"""The thin client over the campaign service: status, watch, drift.

Everything here is a *read* of the results database plus one
convenience orchestration:

* :func:`status` — a point-in-time :class:`RunStatus`: shard queue
  depth, live throughput, per-cell verdicts, violation classes, and
  verdict drift against prior runs of the same cells;
* :func:`watch` — poll a run until it completes, emitting each cell
  verdict once as it lands (the live progress view);
* :func:`verdicts_payload` / :func:`payload_from_report` — the same
  machine-comparable verdict document built from a service run and
  from an in-process :class:`repro.campaign.CampaignReport`, which is
  how CI asserts the two paths agree cell-for-cell;
* :func:`run_service_campaign` — submit + N worker processes + watch:
  the one-shot campaign re-expressed on the service substrate.

Drift is reported, never gated here: a cell whose verdict contradicts
the registry's pinned expectation already fails the run (``ok`` is
false); a cell that *changed against its own history* — violating last
submission, clean now, or a different class set — is exactly the
signal the trend database exists to surface.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.service import queue as squeue
from repro.service.queue import DEFAULT_LEASE_TTL
from repro.service.store import ResultsStore


@dataclass(frozen=True)
class CellVerdict:
    """One recorded cell verdict (a ``cell_verdicts`` row, typed)."""

    cell_index: int
    label: str
    cell_fingerprint: str
    expected: str
    ok: bool
    class_fingerprints: Tuple[str, ...]
    runs: int
    steps: int
    incomplete: int
    elapsed: float
    note: str
    worker: str
    recorded_at: float

    def describe(self) -> str:
        """The one-shot campaign's progress-line rendering, from the row.

        Stall classes are derived from the recorded fingerprints (the
        digit-masked ``STALLED:`` diagnoses survive masking), so the
        wording matches ``CellOutcome.describe`` without widening the
        verdict row schema or the machine-comparable payload.
        """
        stalls = sum(
            1 for fp in self.class_fingerprints if "STALLED:" in fp
        )
        if not self.class_fingerprints:
            found = "clean"
        elif stalls == len(self.class_fingerprints):
            found = f"{len(self.class_fingerprints)} stall class(es)"
        elif stalls:
            found = (
                f"{len(self.class_fingerprints)} violation class(es), "
                f"{stalls} stall(s)"
            )
        else:
            found = f"{len(self.class_fingerprints)} violation class(es)"
        verdict = "as expected" if self.ok else "UNEXPECTED"
        rate = self.runs / self.elapsed if self.elapsed > 0 else 0.0
        return (
            f"{self.label}: {found} ({verdict}) in {self.runs} runs, "
            f"{rate:.0f} runs/s"
        )


@dataclass(frozen=True)
class DriftEntry:
    """One cell whose verdict moved against its own recorded history."""

    label: str
    prior_run: str
    detail: str

    def describe(self) -> str:
        return f"drift {self.label}: {self.detail} (vs run {self.prior_run})"


@dataclass
class RunStatus:
    """A point-in-time view of one run."""

    run_id: str
    status: str
    created_at: float
    completed_at: Optional[float]
    cells: int
    selection: Dict[str, Any]
    shards_pending: int = 0
    shards_leased: int = 0
    shards_done: int = 0
    attempts: int = 0
    verdicts: List[CellVerdict] = field(default_factory=list)
    violations: List[Dict[str, Any]] = field(default_factory=list)
    drift: List[DriftEntry] = field(default_factory=list)
    now: float = 0.0

    @property
    def shards(self) -> int:
        return self.shards_pending + self.shards_leased + self.shards_done

    @property
    def runs(self) -> int:
        return sum(verdict.runs for verdict in self.verdicts)

    @property
    def steps(self) -> int:
        return sum(verdict.steps for verdict in self.verdicts)

    @property
    def elapsed(self) -> float:
        """Wall-clock of the run so far (submission to completion/now)."""
        end = self.completed_at if self.completed_at else self.now
        return max(0.0, end - self.created_at)

    @property
    def runs_per_sec(self) -> float:
        """Live aggregate throughput across all workers."""
        return self.runs / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mismatched(self) -> List[CellVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    @property
    def ok(self) -> bool:
        """Every cell executed, recorded, and matching its expectation."""
        return (
            self.complete
            and len(self.verdicts) == self.cells
            and not self.mismatched
        )

    @property
    def corpus_written(self) -> List[str]:
        return [
            row["corpus_path"]
            for row in self.violations
            if row["state"] == "shrunk" and row["detail"] == "written"
        ]

    @property
    def shrink_deferred(self) -> List[str]:
        return [
            row["fingerprint"]
            for row in self.violations
            if row["state"] == "deferred"
        ]

    def summary(self) -> str:
        """One-paragraph rendering for the CLI."""
        matched = len(self.verdicts) - len(self.mismatched)
        shrunk = sum(
            1 for row in self.violations if row["state"] == "shrunk"
        )
        corpus = (
            f"; corpus: {len(self.corpus_written)} new entr"
            f"{'y' if len(self.corpus_written) == 1 else 'ies'}"
            if self.corpus_written
            else ""
        )
        deferred = (
            f" ({len(self.shrink_deferred)} deferred)"
            if self.shrink_deferred
            else ""
        )
        return (
            f"run {self.run_id} [{self.status}]: {matched}/{self.cells} cells "
            f"matched expectations; {self.shards_done}/{self.shards} shards "
            f"done ({self.shards_leased} leased, {self.shards_pending} "
            f"pending); {self.runs} runs, {self.runs_per_sec:.0f} runs/s; "
            f"{shrunk} violation class(es) shrunk{deferred}{corpus}; "
            f"{len(self.drift)} drift(s) vs prior runs"
        )


def _resolve_run_id(store: ResultsStore, run_id: Optional[str]) -> str:
    resolved = run_id or store.latest_run_id()
    if resolved is None:
        raise ConfigurationError(
            f"no runs submitted to {store.path}; submit one first"
        )
    if store.run_row(resolved) is None:
        known = ", ".join(row["run_id"] for row in store.run_rows()) or "none"
        raise ConfigurationError(
            f"unknown run {resolved!r} in {store.path}; known: {known}"
        )
    return resolved


def status(
    store: ResultsStore,
    run_id: Optional[str] = None,
    with_drift: bool = True,
    now: Optional[float] = None,
) -> RunStatus:
    """Build the point-in-time status of ``run_id`` (default: latest run)."""
    run_id = _resolve_run_id(store, run_id)
    run = store.run_row(run_id)
    assert run is not None  # _resolve_run_id validated
    result = RunStatus(
        run_id=run_id,
        status=run["status"],
        created_at=run["created_at"],
        completed_at=run["completed_at"],
        cells=run["cells"],
        selection=json.loads(run["selection"]),
        now=time.time() if now is None else now,
    )
    for shard in store.shard_rows(run_id):
        result.attempts += shard["attempts"]
        if shard["status"] == "pending":
            result.shards_pending += 1
        elif shard["status"] == "leased":
            result.shards_leased += 1
        else:
            result.shards_done += 1
    result.verdicts = [
        CellVerdict(
            cell_index=row["cell_index"],
            label=row["label"],
            cell_fingerprint=row["cell_fingerprint"],
            expected=row["expected"],
            ok=bool(row["ok"]),
            class_fingerprints=tuple(json.loads(row["fingerprints"])),
            runs=row["runs"],
            steps=row["steps"],
            incomplete=row["incomplete"],
            elapsed=row["elapsed"],
            note=row["note"],
            worker=row["worker"],
            recorded_at=row["recorded_at"],
        )
        for row in store.verdict_rows(run_id)
    ]
    result.violations = store.violation_rows(run_id)
    if with_drift:
        result.drift = _drift(store, result)
    return result


def _drift(store: ResultsStore, result: RunStatus) -> List[DriftEntry]:
    """Each cell's verdict vs the latest prior run of the same cell.

    Registry-expectation mismatches are *not* drift — they already fail
    the run through ``ok``. Drift is history moving: the same cell
    (same fingerprint: scenario, engine, budget, seed) that previously
    produced a different verdict or different violation classes.
    """
    entries: List[DriftEntry] = []
    for verdict in result.verdicts:
        prior = store.prior_verdict(verdict.cell_fingerprint, result.run_id)
        if prior is None:
            continue
        prior_classes = tuple(json.loads(prior["fingerprints"]))
        if bool(prior["ok"]) != verdict.ok:
            entries.append(
                DriftEntry(
                    label=verdict.label,
                    prior_run=prior["run_id"],
                    detail=(
                        f"verdict flipped: was "
                        f"{'ok' if prior['ok'] else 'MISMATCH'}, now "
                        f"{'ok' if verdict.ok else 'MISMATCH'}"
                    ),
                )
            )
        elif prior_classes != verdict.class_fingerprints:
            entries.append(
                DriftEntry(
                    label=verdict.label,
                    prior_run=prior["run_id"],
                    detail=(
                        f"violation classes changed: "
                        f"{list(prior_classes)} -> "
                        f"{list(verdict.class_fingerprints)}"
                    ),
                )
            )
    return entries


def render_status(result: RunStatus) -> str:
    """Full status rendering: verdict table + summary + drift lines."""
    from repro.analysis.reporting import render_table

    headers = (
        "cell",
        "label",
        "runs",
        "runs/s",
        "violations",
        "expected",
        "ok",
        "worker",
    )
    rows = [
        (
            verdict.cell_index,
            verdict.label,
            verdict.runs,
            round(verdict.runs / verdict.elapsed) if verdict.elapsed else 0,
            len(verdict.class_fingerprints),
            verdict.expected,
            verdict.ok,
            verdict.worker,
        )
        for verdict in result.verdicts
    ]
    parts = [
        render_table(
            headers,
            rows,
            title=(
                f"Campaign service run {result.run_id} — "
                f"{len(result.verdicts)}/{result.cells} cell verdicts"
            ),
        ),
        "",
        result.summary(),
    ]
    parts.extend(f"  {entry.describe()}" for entry in result.drift)
    return "\n".join(parts)


def verdicts_payload(result: RunStatus) -> Dict[str, Any]:
    """The machine-comparable verdict document of a service run.

    Deliberately excludes anything timing- or worker-dependent, so two
    executions of the same matrix — any worker fleet, any interleaving
    — produce byte-identical JSON.
    """
    return {
        "cells": [
            {
                "label": verdict.label,
                "expected": verdict.expected,
                "ok": verdict.ok,
                "violations": list(verdict.class_fingerprints),
                "runs": verdict.runs,
                "steps": verdict.steps,
                "incomplete": verdict.incomplete,
            }
            for verdict in sorted(result.verdicts, key=lambda v: v.cell_index)
        ]
    }


def payload_from_report(report: Any) -> Dict[str, Any]:
    """The same verdict document from an in-process ``CampaignReport``.

    This is the equality bridge between ``repro.campaign.run_campaign``
    and the service: both paths run cells through the same
    ``run_cell``, so the two payloads must be byte-identical.
    """
    return {
        "cells": [
            {
                "label": outcome.cell.label(),
                "expected": (
                    "violation" if outcome.cell.expect_violation else "clean"
                ),
                "ok": outcome.ok,
                "violations": sorted(
                    {v.fingerprint() for v in outcome.violations}
                ),
                "runs": outcome.runs,
                "steps": outcome.steps,
                "incomplete": outcome.incomplete,
            }
            for outcome in report.outcomes
        ]
    }


def watch(
    store: ResultsStore,
    run_id: Optional[str] = None,
    interval: float = 0.5,
    emit: Optional[Callable[[str], None]] = None,
    timeout: Optional[float] = None,
    liveness: Optional[Callable[[], bool]] = None,
) -> RunStatus:
    """Poll a run until it completes, emitting each verdict line once.

    ``liveness`` (when given) is consulted after each poll: if it turns
    false while shards are still outstanding, the watch raises instead
    of spinning forever — the one-shot path wires it to "any worker
    process still alive".
    """
    run_id = _resolve_run_id(store, run_id)
    emit = emit or (lambda line: None)
    seen: set = set()
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        # Drift is computed once on the final status, not per poll.
        result = status(store, run_id, with_drift=False)
        for verdict in result.verdicts:
            if verdict.cell_index not in seen:
                seen.add(verdict.cell_index)
                emit(verdict.describe())
        if result.complete:
            return status(store, run_id)
        if liveness is not None and not liveness():
            raise ConfigurationError(
                f"every worker exited but run {run_id} still has "
                f"{result.shards_pending + result.shards_leased} unfinished "
                f"shard(s)"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise ConfigurationError(
                f"timed out watching run {run_id} after {timeout:.0f}s "
                f"({result.shards_done}/{result.shards} shards done)"
            )
        time.sleep(interval)


def run_service_campaign(
    cells: Sequence[Any],
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    shard_size: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    shrink_violations: bool = True,
    max_shrink_replays: int = 400,
    max_shrink_classes: int = 8,
    corpus_dir: Optional[Union[str, Path]] = None,
    corpus_source: str = "service",
    progress: Optional[Callable[[str], None]] = None,
    watch_timeout: Optional[float] = 3600.0,
) -> RunStatus:
    """The one-shot campaign on the service substrate.

    Submit ``cells`` as one run, start ``workers`` leasing worker
    processes against it, watch until the queue drains, and return the
    final status. Cell verdicts are byte-identical to
    :func:`repro.campaign.run_campaign` over the same cells — both
    execute through ``run_cell`` — which is pinned by the service test
    suite and the CI ``service-smoke`` job.

    ``db=None`` uses a throwaway database (submit-shaped scratch runs
    should not pollute the trend history); pass a path to accumulate
    verdict history for drift reporting.
    """
    import tempfile

    from repro.explore.fuzzer import default_shards, pool_context
    from repro.service.worker import run_worker, worker_entry

    worker_count = default_shards() if workers is None else max(1, workers)
    emit = progress or (lambda line: None)
    tempdir: Optional[tempfile.TemporaryDirectory] = None
    if db is None:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
        db = Path(tempdir.name) / "service.db"
    try:
        store = ResultsStore(db)
        options = {
            "shrink": shrink_violations,
            "corpus_dir": None if corpus_dir is None else str(corpus_dir),
            "max_shrink_replays": max_shrink_replays,
            "max_shrink_classes": max_shrink_classes,
            "source": corpus_source,
        }
        run_id = squeue.submit(
            store,
            cells,
            shard_size=shard_size,
            selection={"submitted_by": "run_service_campaign"},
            options=options,
        )
        emit(
            f"submitted run {run_id}: {len(cells)} cell(s) in "
            f"{-(-len(cells) // shard_size)} shard(s), "
            f"{worker_count} worker(s)"
        )
        if worker_count == 1:
            # Inline: no subprocess, verdict lines stream from the worker.
            run_worker(
                str(db),
                run_id=run_id,
                worker="worker-1",
                lease_ttl=lease_ttl,
                progress=progress,
            )
            final = status(store, run_id)
        else:
            ctx = pool_context()
            procs = [
                ctx.Process(
                    target=worker_entry,
                    args=(str(db), run_id, f"worker-{index + 1}", lease_ttl),
                    daemon=True,
                )
                for index in range(worker_count)
            ]
            for proc in procs:
                proc.start()
            try:
                final = watch(
                    store,
                    run_id,
                    interval=0.2,
                    emit=emit,
                    timeout=watch_timeout,
                    liveness=lambda: any(proc.is_alive() for proc in procs),
                )
            finally:
                for proc in procs:
                    proc.join(timeout=30)
                    if proc.is_alive():
                        proc.terminate()
        store.close()
        return final
    finally:
        if tempdir is not None:
            tempdir.cleanup()
