"""The leasable run queue: submit a matrix, lease shards, complete them.

This is the typed face of :class:`repro.service.store.ResultsStore`'s
queue tables. A *run* is a submitted sequence of campaign cells (almost
always a registry ``grid()`` selection — ``submit_matrix`` records the
selection itself for provenance); the store chunks it into *shards*,
the unit a worker leases. The lease protocol is the crash-safety story:

* a lease carries an expiry; the worker heartbeats it forward while it
  executes the shard's cells;
* a worker that dies — crash, SIGKILL, powered-off spot node — simply
  stops heartbeating, the lease expires, and the next ``lease()`` call
  by anyone requeues and claims the shard;
* completion is idempotent and first-write-wins, so a double-delivered
  shard (an expired worker finishing late) records nothing twice — the
  cells are deterministic, so the late result is byte-identical anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.matrix import CampaignCell
from repro.service.cells import cell_from_json, cell_to_json
from repro.service.store import ResultsStore

#: Default lease time-to-live, in seconds. Generous relative to a
#: smoke cell (~seconds) so workers only need to heartbeat between
#: cells, while still bounding how long a crashed worker's shard waits.
DEFAULT_LEASE_TTL = 120.0


@dataclass
class Lease:
    """One claimed shard: positioned cells plus the run's options."""

    run_id: str
    shard_index: int
    lease_id: str
    worker: str
    expires_at: float
    #: ``(matrix position, cell)`` pairs, in submission order.
    cells: List[Tuple[int, CampaignCell]] = field(default_factory=list)
    #: The run's execution options (shrink / corpus settings), recorded
    #: at submit time so every worker applies the same policy.
    options: Dict[str, Any] = field(default_factory=dict)


def submit(
    store: ResultsStore,
    cells: Sequence[CampaignCell],
    shard_size: int = 1,
    selection: Optional[Dict[str, Any]] = None,
    options: Optional[Dict[str, Any]] = None,
    run_id: Optional[str] = None,
    now: Optional[float] = None,
) -> str:
    """Enqueue ``cells`` as one run; returns its id."""
    return store.create_run(
        [cell_to_json(cell) for cell in cells],
        shard_size=shard_size,
        selection=selection,
        options=options,
        run_id=run_id,
        now=now,
    )


def submit_matrix(
    store: ResultsStore,
    smoke: bool = False,
    seed0: int = 0,
    swarm_budget: Optional[int] = None,
    systematic_budget: Optional[int] = None,
    implementations: Optional[Sequence[str]] = None,
    shard_size: int = 1,
    options: Optional[Dict[str, Any]] = None,
    run_id: Optional[str] = None,
) -> str:
    """Submit a registry ``grid()`` selection as a run.

    The standard entry point: the same arguments as
    :func:`repro.campaign.default_matrix`, with the selection recorded
    in the run row so a status query can say *what* was submitted, not
    just how many cells.
    """
    from repro.campaign.matrix import default_matrix

    cells = default_matrix(
        smoke=smoke,
        seed0=seed0,
        swarm_budget=swarm_budget,
        systematic_budget=systematic_budget,
        implementations=implementations,
    )
    selection = {
        "matrix": "smoke" if smoke else "campaign",
        "seed0": seed0,
        "swarm_budget": swarm_budget,
        "systematic_budget": systematic_budget,
        "implementations": (
            None if implementations is None else list(implementations)
        ),
    }
    return submit(
        store,
        cells,
        shard_size=shard_size,
        selection=selection,
        options=options,
        run_id=run_id,
    )


def lease(
    store: ResultsStore,
    worker: str,
    ttl: float = DEFAULT_LEASE_TTL,
    run_id: Optional[str] = None,
    now: Optional[float] = None,
) -> Optional[Lease]:
    """Claim the oldest leasable shard (requeuing expired leases first)."""
    claimed = store.lease_shard(worker, ttl, run_id=run_id, now=now)
    if claimed is None:
        return None
    return Lease(
        run_id=claimed["run_id"],
        shard_index=claimed["shard_index"],
        lease_id=claimed["lease_id"],
        worker=claimed["worker"],
        expires_at=claimed["expires_at"],
        cells=[
            (entry["cell_index"], cell_from_json(entry["cell"]))
            for entry in claimed["cells"]
        ],
        options=claimed["options"],
    )


def heartbeat(
    store: ResultsStore,
    lease_obj: Lease,
    ttl: float = DEFAULT_LEASE_TTL,
    now: Optional[float] = None,
) -> bool:
    """Extend the lease; ``False`` means it expired and was (or will be)
    requeued — the worker should finish and rely on idempotent completion."""
    alive = store.heartbeat(lease_obj.lease_id, ttl, now=now)
    if alive:
        import time as _time

        lease_obj.expires_at = (now if now is not None else _time.time()) + ttl
    return alive


def complete(
    store: ResultsStore,
    lease_obj: Lease,
    runs: int,
    steps: int,
    elapsed: float,
    now: Optional[float] = None,
) -> bool:
    """Report a shard finished; ``True`` iff this delivery landed first."""
    return store.complete_shard(
        lease_obj.run_id,
        lease_obj.shard_index,
        lease_obj.lease_id,
        lease_obj.worker,
        runs=runs,
        steps=steps,
        elapsed=elapsed,
        now=now,
    )


def drained(
    store: ResultsStore,
    run_id: Optional[str] = None,
    now: Optional[float] = None,
) -> bool:
    """True when every shard of every open run (or of ``run_id``) is done."""
    return store.drained(run_id=run_id, now=now)
