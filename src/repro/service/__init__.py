"""Campaign-as-a-service: a persistent run queue, leasing workers, and
a results database.

Where :mod:`repro.campaign` runs a matrix as a one-shot
multiprocessing fan-out that forgets everything but the corpus,
``repro.service`` makes campaigns *operational*: a submitted run
outlives any process, workers on any host lease shards of it and
stream verdicts back, a crashed worker's shard is requeued when its
lease expires, and every verdict lands in a queryable sqlite database
(schema written for an eventual postgres port) alongside the history
of prior runs — which is what turns "did this cell's verdict move?"
into a query instead of an archaeology session.

The layers:

* :mod:`repro.service.store` — the database (runs, shards, leases,
  cell verdicts, violation classes, corpus replay trend);
* :mod:`repro.service.queue` — submit / lease / heartbeat / complete;
* :mod:`repro.service.worker` — the leasing worker loop (executes
  cells through the one-shot ``run_cell`` path, so verdicts are
  byte-identical);
* :mod:`repro.service.client` — status / watch / drift, and
  :func:`run_service_campaign`, the one-shot campaign re-expressed as
  submit + N workers + report.

Quickstart::

    from repro.campaign import default_matrix
    from repro.service import ResultsStore, queue, run_worker, status

    store = ResultsStore("service.db")
    run_id = queue.submit(store, default_matrix(smoke=True))
    run_worker("service.db", run_id=run_id)      # as many as you like
    print(status(store, run_id).summary())

The CLI front end is ``python -m repro.analysis campaign`` with
``--submit`` / ``--worker`` / ``--status`` / ``--watch``.
"""

from repro.service.cells import cell_fingerprint, cell_from_json, cell_to_json
from repro.service.client import (
    CellVerdict,
    DriftEntry,
    RunStatus,
    payload_from_report,
    render_status,
    run_service_campaign,
    status,
    verdicts_payload,
    watch,
)
from repro.service.queue import DEFAULT_LEASE_TTL, Lease
from repro.service.store import ResultsStore, SCHEMA_VERSION, default_db_path
from repro.service.worker import WorkerSummary, run_worker

__all__ = [
    "CellVerdict",
    "DEFAULT_LEASE_TTL",
    "DriftEntry",
    "Lease",
    "ResultsStore",
    "RunStatus",
    "SCHEMA_VERSION",
    "WorkerSummary",
    "cell_fingerprint",
    "cell_from_json",
    "cell_to_json",
    "default_db_path",
    "payload_from_report",
    "render_status",
    "run_service_campaign",
    "run_worker",
    "status",
    "verdicts_payload",
    "watch",
]
