"""Serialization of campaign cells across the service boundary.

The queue stores each :class:`repro.campaign.CampaignCell` as a small
JSON document inside its shard, and workers rebuild the cell — through
the scenario registry, so a retired scenario name fails the lease
loudly instead of executing the wrong thing. Scenario params survive
the round trip as the hashable tuples their labels and fingerprints
were derived from (the same freeze the corpus loader applies).

``cell_fingerprint`` is the cross-run identity used by the results
database: two submissions of the same matrix cell (same family, engine,
scenario label, budget, bounds, seed) share a fingerprint, which is
what makes verdict drift between runs a single indexed query.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from repro.campaign.corpus import _freeze_json
from repro.campaign.matrix import CampaignCell
from repro.scenarios.registry import resolve_spec


def cell_to_json(cell: CampaignCell) -> Dict[str, Any]:
    """The JSON document a cell is queued as."""
    return {
        "implementation": cell.implementation,
        "scenario": {
            "name": cell.scenario.name,
            "params": [[key, value] for key, value in cell.scenario.params],
        },
        "engine": cell.engine,
        "budget": cell.budget,
        "expect_violation": cell.expect_violation,
        "seed0": cell.seed0,
        "depth_bound": cell.depth_bound,
        "preemption_bound": cell.preemption_bound,
        "reduction": cell.reduction,
        "symmetry": [list(group) for group in cell.symmetry],
    }


def cell_from_json(data: Dict[str, Any]) -> CampaignCell:
    """Rebuild a queued cell, validating its scenario against the registry."""
    scenario = resolve_spec(
        data["scenario"]["name"],
        tuple(
            (key, _freeze_json(value))
            for key, value in data["scenario"]["params"]
        ),
    )
    return CampaignCell(
        implementation=data["implementation"],
        scenario=scenario,
        engine=data["engine"],
        budget=int(data["budget"]),
        expect_violation=bool(data["expect_violation"]),
        seed0=int(data["seed0"]),
        depth_bound=int(data["depth_bound"]),
        preemption_bound=int(data["preemption_bound"]),
        # Documents queued before the dpor reductions existed carry
        # neither key; they were (and remain) sleep-baseline cells.
        reduction=str(data.get("reduction", "sleep")),
        symmetry=tuple(
            tuple(int(pid) for pid in group)
            for group in data.get("symmetry", ())
        ),
    )


def cell_fingerprint(cell: CampaignCell) -> str:
    """Stable digest of everything that determines a cell's verdict."""
    basis = (
        cell.implementation,
        cell.engine,
        cell.scenario.label(),
        cell.budget,
        cell.expect_violation,
        cell.seed0,
        cell.depth_bound,
        cell.preemption_bound,
    )
    # The reduction changes a cell's run counts and exhaustion note (not
    # its verdict), so dpor cells get their own identity — appended
    # conditionally so every pre-dpor cell keeps its stored digest.
    if cell.reduction != "sleep":
        basis = basis + (cell.reduction, cell.symmetry)
    return hashlib.blake2b(repr(basis).encode(), digest_size=8).hexdigest()
