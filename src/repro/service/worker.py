"""The leasing campaign worker: lease shards, run cells, stream results.

A worker is a loop over :mod:`repro.service.queue`:

1. lease a shard (requeuing any expired leases on the way);
2. execute each cell through the exact one-shot path —
   :func:`repro.campaign.matrix.run_cell` — so a verdict computed by a
   worker is byte-identical to the same cell run inline;
3. record the cell verdict and every violation class into the results
   store as soon as the cell finishes (streamed, not batched at shard
   completion — a status query mid-run sees live verdicts);
4. shrink + persist claimed violation classes through
   ``repro.campaign.corpus``, exactly as the one-shot path does
   (canonicalizing early-exit finds first), deduplicated across
   workers by the store's claim table;
5. heartbeat between cells, complete the shard, and exit when the
   queue drains.

Crash safety is entirely the queue's: a worker holds no state the
store doesn't. Kill it at any point and the lease expiry returns its
shard to the pool; completion and verdict writes are idempotent, so a
worker that *appears* dead but finishes late changes nothing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.campaign.corpus import entry_from_shrunk, save_entry
from repro.campaign.matrix import (
    CampaignCell,
    CellOutcome,
    canonicalize_violation,
    run_cell,
)
from repro.explore.shrink import shrink
from repro.service import queue as squeue
from repro.service.cells import cell_fingerprint
from repro.service.queue import DEFAULT_LEASE_TTL, Lease
from repro.service.store import ResultsStore

#: Default execution options a run is submitted with; workers read the
#: run's recorded options and fall back to these per key, so old runs
#: stay executable when new options appear.
DEFAULT_OPTIONS = {
    "shrink": True,
    "corpus_dir": None,
    "max_shrink_replays": 400,
    "max_shrink_classes": 8,
    "source": "service",
}


@dataclass
class WorkerSummary:
    """What one worker's loop accomplished before the queue drained."""

    worker: str
    shards: int = 0
    cells: int = 0
    runs: int = 0
    steps: int = 0
    elapsed: float = 0.0
    violations: int = 0
    corpus_written: List[str] = field(default_factory=list)

    @property
    def runs_per_sec(self) -> float:
        return self.runs / self.elapsed if self.elapsed > 0 else 0.0

    def describe(self) -> str:
        """One line for the worker CLI."""
        corpus = (
            f", {len(self.corpus_written)} corpus entr"
            f"{'y' if len(self.corpus_written) == 1 else 'ies'}"
            if self.corpus_written
            else ""
        )
        return (
            f"worker {self.worker}: {self.shards} shard(s), {self.cells} "
            f"cell(s), {self.runs} runs in {self.elapsed:.1f}s "
            f"({self.runs_per_sec:.0f} runs/s); "
            f"{self.violations} violation class(es) claimed{corpus}"
        )


def run_worker(
    db: Union[str, "os.PathLike[str]"],
    run_id: Optional[str] = None,
    worker: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.1,
    max_shards: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    _crash_after_lease: bool = False,
) -> WorkerSummary:
    """Lease and execute shards until the queue drains; returns a summary.

    ``run_id`` restricts the worker to one run (default: serve every
    open run, oldest first). The worker waits — polling — while other
    workers hold live leases, because any of those may crash and hand
    their shard back; it exits only when everything is ``done``.

    ``max_shards`` bounds how many shards this call executes (useful
    for drip-feeding in tests); ``_crash_after_lease`` is a test hook
    that simulates a SIGKILL between leasing and completing a shard
    (``os._exit``, no cleanup — exactly what the lease protocol must
    absorb).
    """
    worker = worker or f"w{os.getpid()}"
    emit = progress or (lambda line: None)
    summary = WorkerSummary(worker=worker)
    started = time.perf_counter()
    store = ResultsStore(db)
    try:
        while True:
            if max_shards is not None and summary.shards >= max_shards:
                break
            lease = squeue.lease(store, worker=worker, ttl=lease_ttl, run_id=run_id)
            if lease is None:
                if squeue.drained(store, run_id=run_id):
                    break
                time.sleep(poll_interval)
                continue
            if _crash_after_lease:
                os._exit(17)
            _execute_shard(store, lease, lease_ttl, summary, emit)
    finally:
        store.close()
    summary.elapsed = time.perf_counter() - started
    return summary


def _execute_shard(
    store: ResultsStore,
    lease: Lease,
    lease_ttl: float,
    summary: WorkerSummary,
    emit: Callable[[str], None],
) -> None:
    """Run one leased shard's cells and report everything back."""
    shard_runs = 0
    shard_steps = 0
    shard_started = time.perf_counter()
    for cell_index, cell in lease.cells:
        outcome = run_cell(cell)
        shard_runs += outcome.runs
        shard_steps += outcome.steps
        store.record_cell_verdict(
            lease.run_id,
            cell_index,
            label=cell.label(),
            cell_fingerprint=cell_fingerprint(cell),
            expected="violation" if cell.expect_violation else "clean",
            ok=outcome.ok,
            fingerprints=sorted(
                {violation.fingerprint() for violation in outcome.violations}
            ),
            runs=outcome.runs,
            steps=outcome.steps,
            incomplete=outcome.incomplete,
            elapsed=outcome.elapsed,
            note=outcome.note,
            worker=lease.worker,
        )
        summary.cells += 1
        emit(outcome.describe())
        _shrink_and_record(store, lease, cell, outcome, summary, emit)
        squeue.heartbeat(store, lease, ttl=lease_ttl)
    squeue.complete(
        store,
        lease,
        runs=shard_runs,
        steps=shard_steps,
        elapsed=time.perf_counter() - shard_started,
    )
    summary.shards += 1
    summary.runs += shard_runs
    summary.steps += shard_steps


def _shrink_and_record(
    store: ResultsStore,
    lease: Lease,
    cell: CampaignCell,
    outcome: CellOutcome,
    summary: WorkerSummary,
    emit: Callable[[str], None],
) -> None:
    """Claim, shrink and persist this cell's violation classes.

    Mirrors the one-shot ``_shrink_and_persist`` semantics: clean-
    expecting cells ran with early exit armed, so their finds are
    canonicalized to the full-horizon class before dedup; one claim per
    (scenario, class) per run across all workers; a per-run cap on
    shrink work, with refused classes recorded as deferred.
    """
    options = dict(DEFAULT_OPTIONS, **lease.options)
    early_exit_cell = not cell.expect_violation
    for violation in outcome.violations:
        if early_exit_cell:
            canonical = canonicalize_violation(cell.scenario, violation)
            if canonical.fingerprint() != violation.fingerprint():
                emit(
                    f"canonicalized early-exit violation to "
                    f"full-horizon class {canonical.fingerprint()}"
                )
            violation = canonical
        label = cell.scenario.label()
        fingerprint = violation.fingerprint()
        claimed = store.claim_violation(
            lease.run_id,
            label,
            fingerprint,
            reason=violation.reason,
            payload={
                "scenario": violation.scenario,
                "reason": violation.reason,
                "trace": list(violation.trace),
                "schedule": violation.schedule,
                "seed": violation.seed,
            },
        )
        if not claimed:
            continue
        summary.violations += 1
        if not options["shrink"]:
            continue
        if not store.take_shrink_slot(
            lease.run_id, label, fingerprint, options["max_shrink_classes"]
        ):
            emit(f"shrink deferred for {fingerprint} (per-run cap)")
            continue
        try:
            shrunk = shrink(
                cell.scenario,
                violation,
                max_replays=options["max_shrink_replays"],
            )
        except ValueError as exc:
            store.finish_shrink(
                lease.run_id, label, fingerprint, state="failed", detail=str(exc)
            )
            emit(f"shrink failed for {fingerprint}: {exc}")
            continue
        emit(f"  {shrunk.describe()}")
        if options["corpus_dir"] is None:
            store.finish_shrink(
                lease.run_id,
                label,
                fingerprint,
                state="shrunk",
                detail="not persisted (no corpus directory)",
            )
            continue
        entry = entry_from_shrunk(cell.scenario, shrunk, source=options["source"])
        path, written = save_entry(options["corpus_dir"], entry)
        store.finish_shrink(
            lease.run_id,
            label,
            fingerprint,
            state="shrunk",
            detail="written" if written else "already recorded",
            corpus_entry=entry.entry_id,
            corpus_path=str(path),
        )
        if written:
            summary.corpus_written.append(str(path))
            emit(f"  corpus + {path}")
        else:
            emit(f"  corpus = {path} (already recorded)")


def worker_entry(
    db: str,
    run_id: Optional[str],
    worker: str,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> None:
    """Module-level process target for spawned worker fleets."""
    run_worker(db, run_id=run_id, worker=worker, lease_ttl=lease_ttl)


def _payload_to_violation(payload: Union[str, dict]):
    """Rebuild a :class:`repro.explore.scenarios.Violation` from its row."""
    from repro.explore.scenarios import Violation

    data = json.loads(payload) if isinstance(payload, str) else payload
    return Violation(
        scenario=data["scenario"],
        reason=data["reason"],
        trace=tuple(int(index) for index in data["trace"]),
        schedule=data.get("schedule", ""),
        seed=data.get("seed"),
    )
