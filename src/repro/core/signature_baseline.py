"""Signature-based comparator registers (the baseline the paper replaces).

The algorithms in the literature that the paper's registers make
signature-free (e.g. Cohen–Keidar [5]) assume *unforgeable digital
signatures*. To compare against that world, this module provides:

* :class:`SignatureOracle` — a trusted, in-simulator signing authority.
  ``sign(pid, value)`` mints a token; ``valid(pid, value, token)`` checks
  it. Forgery is impossible *by construction* (the oracle records every
  mint), which models exactly the abstract unforgeability the paper's
  footnote 1 attributes to cryptographic schemes. Byzantine processes may
  replay, withhold, or relay tokens — everything real signatures allow —
  but cannot mint tokens for other pids, because ``sign`` is only
  reachable through the owner's effect (it is invoked inside the owner's
  procedures).
* :class:`SignedVerifiableRegister` — a verifiable register built *with*
  signatures: one value register plus per-process relay registers. Note
  its fault bound: it works for any ``n > f`` (readers never need a
  quorum — a signature is self-certifying), which is precisely why
  signature-based algorithms in [5] tolerate ``n > 2f`` while the
  signature-free translations need ``n > 3f``. The step-complexity
  benchmark (E10) quantifies the other side of the trade: Verify here is
  O(n) reads with no rounds, whereas Algorithm 1's Verify pays the
  witness machinery.

The oracle is *simulation infrastructure*, not shared memory: calls do
not consume steps (like local crypto operations, they happen inside a
process's step).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from repro.core.interfaces import (
    DONE,
    FAIL,
    SUCCESS,
    AlgorithmBase,
    as_frozenset,
)
from repro.errors import ProtocolViolation
from repro.sim.effects import ReadRegister, WriteRegister
from repro.sim.process import Program
from repro.sim.registers import RegisterSpec, swmr
from repro.sim.values import freeze


class SignatureOracle:
    """A perfect signature scheme: unforgeable by bookkeeping.

    Tokens are opaque ints; the oracle records which ``(signer, value)``
    pair each token certifies. Since tokens can only enter the system via
    ``sign`` and validation consults the mint record, no sequence of
    Byzantine actions can produce a token validating a never-signed pair
    — the exact abstraction "forging requires solving a hard problem"
    idealizes.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._minted: Dict[int, Tuple[int, Any]] = {}

    def sign(self, signer: int, value: Any) -> int:
        """Mint a token certifying that ``signer`` signed ``value``."""
        token = next(self._counter)
        self._minted[token] = (signer, freeze(value))
        return token

    def valid(self, signer: int, value: Any, token: Any) -> bool:
        """Whether ``token`` certifies ``(signer, value)``."""
        if not isinstance(token, int):
            return False
        minted = self._minted.get(token)
        return minted is not None and minted == (signer, freeze(value))

    def minted_count(self) -> int:
        """How many tokens were ever minted (for metrics)."""
        return len(self._minted)


class SignedVerifiableRegister(AlgorithmBase):
    """Verifiable register assuming signatures; tolerates any ``n > f``.

    Shared state:

    * ``{name}/V`` — the writer's value register (last written value).
    * ``{name}/SIG`` — the writer's signed-set register: a set of
      ``(value, token)`` pairs.
    * ``{name}/RELAY[k]`` — reader k's relay register: signed pairs k has
      itself validated, re-published so later verifiers succeed even
      after the writer erases ``SIG`` (the relay property).

    ``Verify(v)`` scans ``SIG`` and every relay register; on finding a
    valid pair it copies the pair to its own relay register *before*
    returning true, which is what makes relay (Observation 13) hold: the
    evidence is now in a correct process's register forever.
    """

    OPERATIONS = ("write", "read", "sign", "verify")

    def __init__(
        self,
        system,
        name: str = "sigreg",
        writer: int = 1,
        f: Optional[int] = None,
        initial: Any = None,
        oracle: Optional[SignatureOracle] = None,
    ):
        super().__init__(system, name, writer=writer, f=f, initial=initial)
        self.oracle = oracle or SignatureOracle()
        self._written: Set[Any] = set()

    # ------------------------------------------------------------------
    def reg_value(self) -> str:
        """``V`` — the writer's plain value register."""
        return f"{self.name}/V"

    def reg_signed(self) -> str:
        """``SIG`` — the writer's set of (value, token) pairs."""
        return f"{self.name}/SIG"

    def reg_relay(self, k: int) -> str:
        """``RELAY_k`` — reader k's validated-pairs register."""
        return f"{self.name}/RELAY[{k}]"

    def register_specs(self) -> Iterable[RegisterSpec]:
        yield swmr(self.reg_value(), self.writer, initial=self.initial)
        yield swmr(self.reg_signed(), self.writer, initial=frozenset())
        for k in self.readers:
            yield swmr(self.reg_relay(k), k, initial=frozenset())

    # ------------------------------------------------------------------
    def procedure_write(self, pid: int, v: Any) -> Program:
        """Plain write into the value register."""
        self._require_writer(pid)
        v = freeze(v)
        yield WriteRegister(self.reg_value(), v)
        self._written.add(v)
        return DONE

    def procedure_read(self, pid: int) -> Program:
        """Plain read of the value register."""
        self._require_reader(pid)
        value = yield ReadRegister(self.reg_value())
        return value

    def procedure_sign(self, pid: int, v: Any) -> Program:
        """Mint a signature for a previously written value and publish it."""
        self._require_writer(pid)
        v = freeze(v)
        if v not in self._written:
            return FAIL
        token = self.oracle.sign(pid, v)
        current = as_frozenset((yield ReadRegister(self.reg_signed())))
        yield WriteRegister(self.reg_signed(), current | {(v, token)})
        return SUCCESS

    def procedure_verify(self, pid: int, v: Any) -> Program:
        """Scan writer + relay registers for a valid signature on ``v``."""
        self._require_reader(pid)
        v = freeze(v)
        evidence: Optional[Tuple[Any, Any]] = None
        raw = yield ReadRegister(self.reg_signed())
        evidence = self._find_valid(v, raw)
        if evidence is None:
            for k in self.readers:
                raw = yield ReadRegister(self.reg_relay(k))
                evidence = self._find_valid(v, raw)
                if evidence is not None:
                    break
        if evidence is None:
            return False
        if pid != self.writer:
            mine = as_frozenset((yield ReadRegister(self.reg_relay(pid))))
            if evidence not in mine:
                # Publish the evidence before returning true: this is the
                # step that makes the relay property unconditional.
                yield WriteRegister(self.reg_relay(pid), mine | {evidence})
        return True

    def procedure_help(self, pid: int) -> Program:
        """No helper needed — signatures are self-certifying.

        Provided (as a no-op daemon) so harness code can treat all
        register types uniformly.
        """
        from repro.sim.effects import Pause

        while True:
            yield Pause()

    # ------------------------------------------------------------------
    def _find_valid(self, v: Any, raw: Any) -> Optional[Tuple[Any, Any]]:
        """First well-formed pair in ``raw`` that validly signs ``v``."""
        for entry in as_frozenset(raw):
            if isinstance(entry, tuple) and len(entry) == 2:
                value, token = entry
                if value == v and self.oracle.valid(self.writer, v, token):
                    return entry
        return None
