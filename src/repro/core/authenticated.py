"""Algorithm 2: SWMR multivalued *authenticated* register (Section 7).

An authenticated register merges the write and the "signing" of a value
into one atomic operation: every written value is automatically signed
(Definition 15). It drops ``R*`` and ``Sign``; instead the writer's
register ``R_1`` holds timestamped tuples ``⟨l, v⟩`` and readers select
the highest tuple — but, crucially, a ``Read`` *verifies* the selected
value before returning it, falling back to ``v0`` when verification
fails (possible only under a Byzantine writer; Section 7.1). Correct for
``n > 3f`` (Theorem 20).

Register families (writer ``p1``, readers ``p2 .. pn``):

=================  =======================  ==========================
Paper name         Simulator name           Role
=================  =======================  ==========================
``R_1``            ``{name}/R[1]``          writer's timestamped tuples
                                            ``{⟨l, v⟩, ...}``; doubles
                                            as the writer's witness set
``R_k`` (k != 1)   ``{name}/R[k]``          reader k's witness set
``R_ik``           ``{name}/R[i->k]``       SWSR reply channel i -> k
``C_k``            ``{name}/C[k]``          reader k's round counter
=================  =======================  ==========================

Comments cite Algorithm 2's line numbers. The ``Verify`` procedure is
identical to Algorithm 1's (the paper states this explicitly); the Help
daemon differs in how the writer's values are extracted from the
timestamped ``R_1`` (lines 29–31).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.interfaces import (
    DONE,
    AlgorithmBase,
    as_frozenset,
    as_int,
    as_reply_pair,
)
from repro.sim.effects import Pause, ReadRegister, WriteRegister
from repro.sim.process import Program
from repro.sim.registers import RegisterSpec, swmr, swsr
from repro.sim.values import freeze, stable_key


def timestamped_values(raw: Any) -> frozenset:
    """Extract ``{v : ⟨-, v⟩ in raw}`` from the writer's register (line 30).

    A Byzantine writer can store arbitrary garbage in ``R_1``; entries
    that are not well-formed ``⟨l, v⟩`` pairs are ignored, and a raw value
    that is not a set at all contributes nothing.
    """
    values: Set[Any] = set()
    if isinstance(raw, frozenset):
        for entry in raw:
            if (
                isinstance(entry, tuple)
                and len(entry) == 2
                and isinstance(entry[0], int)
                and not isinstance(entry[0], bool)
            ):
                values.add(entry[1])
    return frozenset(values)


def well_formed_tuples(raw: Any) -> List[Tuple[int, Any]]:
    """All well-formed ``⟨l, v⟩`` entries of a raw ``R_1`` value (line 5)."""
    if not isinstance(raw, frozenset):
        return []
    out: List[Tuple[int, Any]] = []
    for entry in raw:
        if (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], int)
            and not isinstance(entry[0], bool)
        ):
            out.append((entry[0], entry[1]))
    return out


def max_tuple(tuples: List[Tuple[int, Any]]) -> Tuple[int, Any]:
    """The maximum ``⟨l, v⟩`` under the paper's order (footnote 8).

    ``⟨l, v⟩ >= ⟨l', v'⟩`` iff ``l > l'`` or ``l = l'`` and ``v >= v'``;
    value comparison uses the library's deterministic total order
    (``stable_key``) so heterogeneous Byzantine values still sort.
    """
    return max(tuples, key=lambda lv: (lv[0], stable_key(lv[1])))


class AuthenticatedRegister(AlgorithmBase):
    """Line-faithful implementation of Algorithm 2.

    Operations: ``write`` (writer), ``read`` and ``verify`` (any reader).
    Help daemons must run on every correct process (Theorem 112).
    """

    OPERATIONS = ("write", "read", "verify")

    def __init__(
        self,
        system,
        name: str = "areg",
        writer: int = 1,
        f: Optional[int] = None,
        initial: Any = None,
    ):
        super().__init__(system, name, writer=writer, f=f, initial=initial)
        #: Writer-local timestamp counter ``l`` (line "local variable").
        self._timestamp = 0

    # ------------------------------------------------------------------
    # Register naming
    # ------------------------------------------------------------------
    def reg_witness(self, i: int) -> str:
        """``R_i`` — writer tuples for i = writer, witness set otherwise."""
        return f"{self.name}/R[{i}]"

    def reg_reply(self, j: int, k: int) -> str:
        """``R_jk`` — SWSR reply channel written by j, read by reader k."""
        return f"{self.name}/R[{j}->{k}]"

    def reg_counter(self, k: int) -> str:
        """``C_k`` — reader k's asker counter."""
        return f"{self.name}/C[{k}]"

    def register_specs(self) -> Iterable[RegisterSpec]:
        # R1 initially {⟨0, v0⟩}; reader witness sets initially {v0}
        # (the initial value is deemed signed — Section 6).
        yield swmr(
            self.reg_witness(self.writer),
            self.writer,
            initial=frozenset({(0, self.initial)}),
        )
        for k in self.readers:
            yield swmr(self.reg_witness(k), k, initial=frozenset({self.initial}))
        for j in self.pids:
            for k in self.readers:
                yield swsr(self.reg_reply(j, k), j, k, initial=(frozenset(), 0))
        for k in self.readers:
            yield swmr(self.reg_counter(k), k, initial=0)

    # ------------------------------------------------------------------
    # Writer procedure
    # ------------------------------------------------------------------
    def procedure_write(self, pid: int, v: Any) -> Program:
        """``Write(v)`` — lines 1–3: timestamp and insert atomically."""
        self._require_writer(pid)
        v = freeze(v)
        self._timestamp += 1  # line 1: l <- l + 1 (writer-local)
        current = yield ReadRegister(self.reg_witness(self.writer))
        tuples = current if isinstance(current, frozenset) else frozenset()
        # line 2: R1 <- R1 U {⟨l, v⟩} (owner read-modify-write)
        yield WriteRegister(
            self.reg_witness(self.writer), tuples | {(self._timestamp, v)}
        )
        return DONE  # line 3

    # ------------------------------------------------------------------
    # Reader procedures
    # ------------------------------------------------------------------
    def procedure_read(self, pid: int) -> Program:
        """``Read()`` — lines 4–9: select max tuple, verify, else ``v0``.

        The verification call inside Read is the paper's "dual use" of the
        Verify procedure (footnote 7): it guarantees Observation 19 — a
        Read's return value will verify for every later reader — even when
        a Byzantine writer erases the tuple right after the Read.
        """
        self._require_reader(pid)
        raw = yield ReadRegister(self.reg_witness(self.writer))  # line 4
        tuples = well_formed_tuples(raw)  # line 5 (format check)
        if tuples:
            _ts, candidate = max_tuple(tuples)  # line 6
            verified = yield from self.procedure_verify(
                pid, candidate, _internal=True
            )  # line 7
            if verified:  # line 8
                return candidate
        return self.initial  # line 9

    def procedure_verify(
        self, pid: int, v: Any, _internal: bool = False
    ) -> Program:
        """``Verify(v)`` — lines 10–23; identical to Algorithm 1's.

        ``_internal`` marks executions nested inside Read (they are
        *executions* of the procedure, not Verify *operations*, per the
        paper's Appendix B notation); behaviourally identical.
        """
        self._require_reader(pid)
        v = freeze(v)
        set0: Set[int] = set()
        set1: Set[int] = set()
        while True:  # line 11
            counter = as_int((yield ReadRegister(self.reg_counter(pid))))
            ck = counter + 1
            yield WriteRegister(self.reg_counter(pid), ck)  # line 12
            chosen_j: Optional[int] = None
            chosen_reply: frozenset = frozenset()
            while chosen_j is None:  # lines 13-16
                progressed = False
                for j in self.pids:
                    if j in set0 or j in set1:
                        continue
                    progressed = True
                    raw = yield ReadRegister(self.reg_reply(j, pid))  # line 15
                    payload, cj = as_reply_pair(raw)
                    if cj is not None and cj >= ck:  # line 16
                        chosen_j = j
                        chosen_reply = as_frozenset(payload)
                        break
                if not progressed:
                    yield Pause()  # n <= 3f dead end; see verifiable.py
            if v in chosen_reply:  # line 17
                set1.add(chosen_j)  # line 18
                set0 = set()  # line 19
            else:  # line 20
                set0.add(chosen_j)  # line 21
            if len(set1) >= self.n - self.f:  # line 22
                return True
            if len(set0) > self.f:  # line 23
                return False

    # ------------------------------------------------------------------
    # Help daemon
    # ------------------------------------------------------------------
    def procedure_help(self, pid: int) -> Program:
        """``Help()`` — lines 24–38.

        Differences from Algorithm 1's helper (Section 7.1): the writer's
        values are the *projections* of its timestamped tuples (line 30),
        and the writer itself publishes exactly that projection — its
        witness set *is* ``R_1`` — while other processes accumulate
        adopted values into their own ``R_j`` (lines 31–35).
        """
        prev_ck: Dict[int, int] = {k: 0 for k in self.readers}  # line 24
        while True:  # line 25
            cks: Dict[int, int] = {}
            for k in self.readers:  # line 26
                cks[k] = as_int((yield ReadRegister(self.reg_counter(k))))
            askers = [k for k in self.readers if cks[k] > prev_ck[k]]  # line 27
            if not askers:  # line 28
                yield Pause()
                continue
            raw_writer = yield ReadRegister(self.reg_witness(self.writer))  # line 29
            writer_values = timestamped_values(raw_writer)  # line 30
            if pid != self.writer:  # line 31
                witness_sets: Dict[int, frozenset] = {self.writer: writer_values}
                for i in self.readers:  # line 32
                    witness_sets[i] = as_frozenset(
                        (yield ReadRegister(self.reg_witness(i)))
                    )
                candidates: Set[Any] = set()
                for witnessed in witness_sets.values():
                    candidates |= witnessed
                adopted = {
                    v
                    for v in candidates
                    # line 33: v in r1 or in >= f+1 of the r_i (the
                    # writer's projection counts as one of the r_i).
                    if v in writer_values
                    or sum(1 for i in self.pids if v in witness_sets[i])
                    >= self.f + 1
                }
                own_now = as_frozenset(
                    (yield ReadRegister(self.reg_witness(pid)))
                )
                yield WriteRegister(self.reg_witness(pid), own_now | adopted)  # line 34
                published = as_frozenset(
                    (yield ReadRegister(self.reg_witness(pid)))
                )  # line 35
            else:
                # For j = 1 the helper publishes the projection of R_1
                # directly (no separate witness register exists).
                published = writer_values
            for k in askers:  # line 36
                yield WriteRegister(self.reg_reply(pid, k), (published, cks[k]))  # line 37
                prev_ck[k] = cks[k]  # line 38
