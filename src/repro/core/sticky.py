"""Algorithm 3: SWMR *sticky* register (Section 9).

A sticky register accepts a single value forever: once any correct
process reads ``v != ⊥``, every later read returns the same ``v`` —
even when the writer is Byzantine (Observations 22–24). This gives
non-equivocation: a register-based broadcast where no two correct
processes can deliver different values from the same sender.

The implementation uses a two-phase witness discipline strictly stronger
than Algorithms 1–2's (Section 9.1): a process first *echoes* the first
value it sees in the writer's register ``E_1`` into its own echo register
``E_j``, and becomes a *witness* (writes its witness register ``R_j``)
only after seeing ``n - f`` echoes of the same value — which prevents two
correct processes from ever witnessing different values — or after seeing
``f + 1`` witnesses. The writer's ``Write`` blocks until ``n - f``
witnesses exist, which is what makes a subsequent Read guaranteed to
return the value rather than ``⊥``. Correct for ``n > 3f`` (Theorem 25).

Register families (writer ``p1``, readers ``p2 .. pn``):

=================  =======================  ==========================
Paper name         Simulator name           Role
=================  =======================  ==========================
``E_i``            ``{name}/E[i]``          echo register of process i
``R_i``            ``{name}/R[i]``          witness register (one value)
``R_ik``           ``{name}/R[i->k]``       SWSR reply channel i -> k
``C_k``            ``{name}/C[k]``          reader k's round counter
=================  =======================  ==========================

Comments cite Algorithm 3's line numbers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.interfaces import DONE, AlgorithmBase, as_int
from repro.sim.effects import Pause, ReadRegister, WriteRegister
from repro.sim.process import Program
from repro.sim.registers import RegisterSpec, swmr, swsr
from repro.sim.values import BOTTOM, freeze, is_bottom


def as_single_value(raw: Any) -> Any:
    """Parse an echo/witness register: any frozen value or ``⊥``.

    Unlike Algorithms 1–2 these registers hold a single value, so all
    frozen values are acceptable; the only normalization needed is
    preserving ``⊥`` identity.
    """
    return raw


def reply_pair(raw: Any) -> Tuple[Any, Optional[int]]:
    """Parse ``R_jk`` as ``(value-or-⊥, counter)``; garbage never unblocks."""
    if (
        isinstance(raw, tuple)
        and len(raw) == 2
        and isinstance(raw[1], int)
        and not isinstance(raw[1], bool)
    ):
        return raw[0], raw[1]
    return BOTTOM, None


class StickyRegister(AlgorithmBase):
    """Line-faithful implementation of Algorithm 3.

    Operations: ``write`` (writer; blocks for ``n - f`` witnesses),
    ``read`` (any reader). Help daemons must run on every correct process
    for both operations to terminate (Theorem 179).
    """

    OPERATIONS = ("write", "read")

    def __init__(
        self,
        system,
        name: str = "sreg",
        writer: int = 1,
        f: Optional[int] = None,
        wait_for_witnesses: bool = True,
    ):
        # The initial value of a sticky register is always ⊥ (Def. 21).
        super().__init__(system, name, writer=writer, f=f, initial=BOTTOM)
        #: §9.1 ablation switch. The paper explains that *without* the
        #: n-f-witness wait in Write, a Read invoked after Write(v)
        #: completes can return ⊥ (violating Observation 22); experiment
        #: E12 demonstrates it. True is the paper's algorithm.
        self.wait_for_witnesses = wait_for_witnesses

    # ------------------------------------------------------------------
    # Register naming
    # ------------------------------------------------------------------
    def reg_echo(self, i: int) -> str:
        """``E_i`` — process i's echo register."""
        return f"{self.name}/E[{i}]"

    def reg_witness(self, i: int) -> str:
        """``R_i`` — process i's (single-value) witness register."""
        return f"{self.name}/R[{i}]"

    def reg_reply(self, j: int, k: int) -> str:
        """``R_jk`` — SWSR reply channel written by j, read by reader k."""
        return f"{self.name}/R[{j}->{k}]"

    def reg_counter(self, k: int) -> str:
        """``C_k`` — reader k's asker counter."""
        return f"{self.name}/C[{k}]"

    def register_specs(self) -> Iterable[RegisterSpec]:
        for i in self.pids:
            yield swmr(self.reg_echo(i), i, initial=BOTTOM)
            yield swmr(self.reg_witness(i), i, initial=BOTTOM)
        for j in self.pids:
            for k in self.readers:
                yield swsr(self.reg_reply(j, k), j, k, initial=(BOTTOM, 0))
        for k in self.readers:
            yield swmr(self.reg_counter(k), k, initial=0)

    # ------------------------------------------------------------------
    # Writer procedure
    # ------------------------------------------------------------------
    def procedure_write(self, pid: int, v: Any) -> Program:
        """``Write(v)`` — lines 1–6.

        The wait at lines 3–5 is essential (Section 9.1): without it a
        Read invoked after Write completes could still return ``⊥``,
        because the stricter two-phase witness rule delays acceptance.
        """
        self._require_writer(pid)
        v = freeze(v)
        if is_bottom(v):
            raise ValueError("⊥ is not a writable value of a sticky register")
        current = yield ReadRegister(self.reg_echo(self.writer))
        if not is_bottom(current):  # line 1: already wrote before
            return DONE
        yield WriteRegister(self.reg_echo(self.writer), v)  # line 2
        if not self.wait_for_witnesses:
            return DONE  # E12 ablation: skip lines 3-5 (unsound!)
        while True:  # lines 3-5: wait for n-f witnesses of v
            count = 0
            for i in self.pids:  # line 4
                witnessed = yield ReadRegister(self.reg_witness(i))
                if witnessed == v and not is_bottom(witnessed):
                    count += 1
            if count >= self.n - self.f:  # line 5
                return DONE  # line 6

    # ------------------------------------------------------------------
    # Reader procedure
    # ------------------------------------------------------------------
    def procedure_read(self, pid: int) -> Program:
        """``Read()`` — lines 7–22.

        Structurally Verify's round machinery, but collecting *witnessed
        values* instead of yes/no votes: ``setval`` holds ``(value, pj)``
        pairs, ``set⊥`` the processes that reported "not a witness" since
        the last non-⊥ report. Returns ``v`` on ``n - f`` witnesses of the
        same ``v`` and ``⊥`` on ``f + 1`` ⊥-reports.
        """
        self._require_reader(pid)
        set_bot: Set[int] = set()
        setval: Set[Tuple[Any, int]] = set()  # line 7
        classified_pids = lambda: set_bot | {pj for (_v, pj) in setval}
        while True:  # line 8
            counter = as_int((yield ReadRegister(self.reg_counter(pid))))
            ck = counter + 1
            yield WriteRegister(self.reg_counter(pid), ck)  # line 9
            pending = [j for j in self.pids if j not in classified_pids()]  # line 10
            chosen_j: Optional[int] = None
            chosen_value: Any = BOTTOM
            while chosen_j is None:  # lines 11-14
                if not pending:
                    yield Pause()  # n <= 3f dead end; cannot classify more
                    continue
                for j in pending:
                    raw = yield ReadRegister(self.reg_reply(j, pid))  # line 13
                    uj, cj = reply_pair(raw)
                    if cj is not None and cj >= ck:  # line 14
                        chosen_j = j
                        chosen_value = uj
                        break
            if not is_bottom(chosen_value):  # line 15
                setval.add((chosen_value, chosen_j))  # line 16
                set_bot = set()  # line 17
            else:  # line 18
                set_bot.add(chosen_j)  # line 19
            # line 20: some value witnessed by >= n-f distinct processes?
            by_value: Dict[Any, int] = {}
            for value, _pj in setval:
                by_value[value] = by_value.get(value, 0) + 1
            for value, count in by_value.items():
                if count >= self.n - self.f:
                    return value  # line 21
            if len(set_bot) > self.f:  # line 22
                return BOTTOM

    # ------------------------------------------------------------------
    # Help daemon
    # ------------------------------------------------------------------
    def procedure_help(self, pid: int) -> Program:
        """``Help()`` — lines 23–40.

        Two standing duties precede the asker service: echo the writer's
        first value (lines 25–27) and adopt a witness value on seeing
        ``n - f`` matching echoes (lines 28–30). When askers exist, a
        process may alternatively adopt on ``f + 1`` matching *witnesses*
        (lines 34–36) before publishing its witness value (lines 37–39).
        """
        prev_ck: Dict[int, int] = {k: 0 for k in self.readers}  # line 23
        while True:  # line 24
            own_echo = yield ReadRegister(self.reg_echo(pid))
            if is_bottom(own_echo):  # line 25
                writer_echo = yield ReadRegister(self.reg_echo(self.writer))  # line 26
                if not is_bottom(writer_echo):
                    yield WriteRegister(self.reg_echo(pid), writer_echo)  # line 27
            own_witness = yield ReadRegister(self.reg_witness(pid))
            if is_bottom(own_witness):  # line 28
                echo_counts: Dict[Any, int] = {}
                for i in self.pids:  # line 29
                    echoed = yield ReadRegister(self.reg_echo(i))
                    if not is_bottom(echoed):
                        echo_counts[echoed] = echo_counts.get(echoed, 0) + 1
                for value, count in echo_counts.items():  # line 30
                    if count >= self.n - self.f:
                        yield WriteRegister(self.reg_witness(pid), value)
                        break
            cks: Dict[int, int] = {}
            for k in self.readers:  # line 31
                cks[k] = as_int((yield ReadRegister(self.reg_counter(k))))
            askers = [k for k in self.readers if cks[k] > prev_ck[k]]  # line 32
            if not askers:  # line 33
                yield Pause()
                continue
            own_witness = yield ReadRegister(self.reg_witness(pid))
            if is_bottom(own_witness):  # line 34
                witness_counts: Dict[Any, int] = {}
                for i in self.pids:  # line 35
                    witnessed = yield ReadRegister(self.reg_witness(i))
                    if not is_bottom(witnessed):
                        witness_counts[witnessed] = (
                            witness_counts.get(witnessed, 0) + 1
                        )
                for value, count in witness_counts.items():  # line 36
                    if count >= self.f + 1:
                        yield WriteRegister(self.reg_witness(pid), value)
                        break
            published = yield ReadRegister(self.reg_witness(pid))  # line 37
            for k in askers:  # line 38
                yield WriteRegister(self.reg_reply(pid, k), (published, cks[k]))  # line 39
                prev_ck[k] = cks[k]  # line 40
