"""Naive strawman registers: what goes wrong without the paper's machinery.

Two broken designs from the paper's own discussion, written out so
attack demos and tests can exhibit the failures concretely:

1. :class:`NaiveVerifiableRegister` — Section 5.1's opening problem. A
   reader who sees a value ``v`` in the writer's register cannot treat
   it as signed: a Byzantine writer can erase ``v`` and "deny" having
   written it. ``Sign(v)`` publishes ``v`` in a writer-owned register
   and ``Verify(v)`` just reads it; a single Byzantine writer then
   violates the relay property (sign, let a reader verify, erase — the
   next verifier gets false).

2. :class:`NaiveQuorumVerifiableRegister` — Section 5.1's "partial
   algorithm": Verify asks everyone and decides from the first
   ``n - f`` distinct replies against a fixed yes-threshold ``τ``.
   The paper explains why every ``τ`` fails when ``f < k < 2f + 1``
   yes-votes arrive: colluding flip-flop witnesses (and a denying
   writer) give an early verifier ``τ`` yes-votes and a later one fewer,
   breaking relay; the set0/set1 round machinery of Algorithm 1 is
   exactly the fix. Experiment E11 stages this attack.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from repro.core.interfaces import DONE, FAIL, SUCCESS, AlgorithmBase, as_frozenset
from repro.core.verifiable import VerifiableRegister
from repro.sim.effects import Pause, ReadRegister, WriteRegister
from repro.sim.process import Program
from repro.sim.registers import RegisterSpec, swmr
from repro.sim.values import freeze


class NaiveVerifiableRegister(AlgorithmBase):
    """The erasable strawman: verification trusts the writer's register."""

    OPERATIONS = ("write", "read", "sign", "verify")

    def __init__(
        self,
        system,
        name: str = "naive",
        writer: int = 1,
        f: Optional[int] = None,
        initial: Any = None,
    ):
        super().__init__(system, name, writer=writer, f=f, initial=initial)
        self._written: Set[Any] = set()

    def reg_value(self) -> str:
        """The writer's plain value register."""
        return f"{self.name}/V"

    def reg_signed(self) -> str:
        """The writer's (erasable!) signed-set register."""
        return f"{self.name}/SIG"

    def register_specs(self) -> Iterable[RegisterSpec]:
        yield swmr(self.reg_value(), self.writer, initial=self.initial)
        yield swmr(self.reg_signed(), self.writer, initial=frozenset())

    def procedure_write(self, pid: int, v: Any) -> Program:
        """Plain write."""
        self._require_writer(pid)
        v = freeze(v)
        yield WriteRegister(self.reg_value(), v)
        self._written.add(v)
        return DONE

    def procedure_read(self, pid: int) -> Program:
        """Plain read."""
        self._require_reader(pid)
        value = yield ReadRegister(self.reg_value())
        return value

    def procedure_sign(self, pid: int, v: Any) -> Program:
        """Publish ``v`` as signed — in a register the writer can erase."""
        self._require_writer(pid)
        v = freeze(v)
        if v not in self._written:
            return FAIL
        current = as_frozenset((yield ReadRegister(self.reg_signed())))
        yield WriteRegister(self.reg_signed(), current | {v})
        return SUCCESS

    def procedure_verify(self, pid: int, v: Any) -> Program:
        """Trust whatever the writer's register currently says."""
        self._require_reader(pid)
        v = freeze(v)
        signed = as_frozenset((yield ReadRegister(self.reg_signed())))
        return v in signed

    def procedure_help(self, pid: int) -> Program:
        """No helping — that is exactly what is missing."""
        from repro.sim.effects import Pause

        while True:
            yield Pause()


class NaiveQuorumVerifiableRegister(VerifiableRegister):
    """Section 5.1's broken "partial algorithm" for Verify (E11 ablation).

    Inherits Write/Read/Sign and the Help daemon from Algorithm 1 but
    replaces Verify's round machinery with the naive strategy the paper
    dismisses: one asker round, collect replies from the first ``n - f``
    *distinct* processes, count how many include the value, and compare
    against a fixed threshold ``tau`` (default ``2f + 1``):

    * ``k >= tau``  -> true
    * otherwise     -> false

    Against flip-flop witnesses this violates the relay property —
    exactly the bind described in Section 5.1 — because a process's
    "yes" is not locked in: it can answer "no" to the next verifier, and
    nothing in the naive scheme ever re-asks or remembers.
    """

    def __init__(
        self,
        system,
        name: str = "nqreg",
        writer: int = 1,
        f: Optional[int] = None,
        initial: Any = None,
        tau: Optional[int] = None,
    ):
        super().__init__(system, name, writer=writer, f=f, initial=initial)
        self.tau = (2 * self.f + 1) if tau is None else tau

    def procedure_verify(self, pid: int, v: Any) -> Program:
        """Collect first ``n - f`` distinct replies; threshold decides."""
        self._require_reader(pid)
        v = freeze(v)
        from repro.core.interfaces import as_int, as_reply_pair

        counter = as_int((yield ReadRegister(self.reg_counter(pid))))
        ck = counter + 1
        yield WriteRegister(self.reg_counter(pid), ck)
        replied: Dict[int, frozenset] = {}
        while len(replied) < self.n - self.f:
            for j in self.pids:
                if j in replied:
                    continue
                raw = yield ReadRegister(self.reg_reply(j, pid))
                payload, cj = as_reply_pair(raw)
                if cj is not None and cj >= ck:
                    replied[j] = as_frozenset(payload)
                    if len(replied) >= self.n - self.f:
                        break
            else:
                yield Pause()
        yes_votes = sum(1 for reply in replied.values() if v in reply)
        return yes_votes >= self.tau
