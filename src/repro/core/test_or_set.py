"""Test-or-set objects (Section 10).

A *test-or-set* object is a register initialized to 0 that a single
*setter* can set to 1 and any *tester* can test (Definition 26). The
paper uses it in both directions of the optimality result:

* **Possible** (Observation 30): wait-free implementations exist from a
  verifiable, an authenticated, or a sticky register — all three are
  provided here as thin wrappers, each with the paper's stated
  linearization points.
* **Impossible** (Theorem 29): for ``3 <= n <= 3f`` no correct
  implementation from plain SWMR registers exists. The attack script in
  ``repro.adversary.theorem29`` drives the Figure 1 histories against the
  *candidate* implementation below — :class:`QuorumTestOrSet`, the
  natural witness-quorum algorithm built directly on SWMR registers —
  showing every choice of its acceptance threshold breaks one of
  Lemma 28's properties at ``n = 3f``, while the same attacks fail at
  ``n = 3f + 1``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.authenticated import AuthenticatedRegister
from repro.core.interfaces import DONE, AlgorithmBase, as_int
from repro.core.sticky import StickyRegister
from repro.core.verifiable import VerifiableRegister
from repro.sim.effects import PAUSE, ReadRegister, WriteRegister
from repro.sim.process import Program
from repro.sim.registers import RegisterSpec, swmr
from repro.sim.system import System
from repro.sim.values import BOTTOM, is_bottom

#: The value a Set installs; testers return 1 when they accept it.
SET_FLAG = 1


class TestOrSetFromVerifiable:
    """Test-or-set from one verifiable register (Section 10).

    ``Set``: ``Write(1)`` then ``Sign(1)`` — linearizing at the Sign.
    ``Test``: ``Verify(1)`` — 1 iff it returns true.
    """

    OPERATIONS = ("set", "test")
    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, register: VerifiableRegister, name: str = "tos-v"):
        self.register = register
        self.name = name

    def install(self) -> "TestOrSetFromVerifiable":
        """Install the underlying register's shared state."""
        self.register.install()
        return self

    def start_helpers(self, pids: Optional[Iterable[int]] = None) -> None:
        """Start the underlying register's Help daemons."""
        self.register.start_helpers(pids)

    def procedure_set(self, pid: int) -> Program:
        """``Set`` = ``Write(1)``; ``Sign(1)``."""
        yield from self.register.procedure_write(pid, SET_FLAG)
        result = yield from self.register.procedure_sign(pid, SET_FLAG)
        return DONE if result == "success" else result

    def procedure_test(self, pid: int) -> Program:
        """``Test`` = ``Verify(1)`` mapped to {0, 1}."""
        verified = yield from self.register.procedure_verify(pid, SET_FLAG)
        return 1 if verified else 0

    def op(self, pid: int, opname: str, *args: Any) -> Program:
        """Recorded operation entry point (mirrors AlgorithmBase.op)."""
        from repro.sim.process import call

        procedure = getattr(self, f"procedure_{opname}")(pid, *args)
        return call(self.name, opname, tuple(args), procedure)


class TestOrSetFromAuthenticated:
    """Test-or-set from one authenticated register (Section 10).

    ``Set``: ``Write(1)`` (auto-signed). ``Test``: ``Verify(1)``.
    The register must be initialized to a value other than 1 (the paper
    uses ``v0 = 0``) so an unset ``Verify(1)`` is false.
    """

    OPERATIONS = ("set", "test")
    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, register: AuthenticatedRegister, name: str = "tos-a"):
        if register.initial == SET_FLAG:
            raise ValueError("authenticated register must not start at 1")
        self.register = register
        self.name = name

    def install(self) -> "TestOrSetFromAuthenticated":
        """Install the underlying register's shared state."""
        self.register.install()
        return self

    def start_helpers(self, pids: Optional[Iterable[int]] = None) -> None:
        """Start the underlying register's Help daemons."""
        self.register.start_helpers(pids)

    def procedure_set(self, pid: int) -> Program:
        """``Set`` = ``Write(1)``."""
        yield from self.register.procedure_write(pid, SET_FLAG)
        return DONE

    def procedure_test(self, pid: int) -> Program:
        """``Test`` = ``Verify(1)`` mapped to {0, 1}."""
        verified = yield from self.register.procedure_verify(pid, SET_FLAG)
        return 1 if verified else 0

    def op(self, pid: int, opname: str, *args: Any) -> Program:
        """Recorded operation entry point."""
        from repro.sim.process import call

        procedure = getattr(self, f"procedure_{opname}")(pid, *args)
        return call(self.name, opname, tuple(args), procedure)


class TestOrSetFromSticky:
    """Test-or-set from one sticky register (Section 10).

    ``Set``: ``Write(1)``. ``Test``: ``Read`` — 1 iff it returns 1.
    """

    OPERATIONS = ("set", "test")
    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, register: StickyRegister, name: str = "tos-s"):
        self.register = register
        self.name = name

    def install(self) -> "TestOrSetFromSticky":
        """Install the underlying register's shared state."""
        self.register.install()
        return self

    def start_helpers(self, pids: Optional[Iterable[int]] = None) -> None:
        """Start the underlying register's Help daemons."""
        self.register.start_helpers(pids)

    def procedure_set(self, pid: int) -> Program:
        """``Set`` = ``Write(1)`` on the sticky register."""
        yield from self.register.procedure_write(pid, SET_FLAG)
        return DONE

    def procedure_test(self, pid: int) -> Program:
        """``Test`` = ``Read`` mapped to {0, 1}."""
        value = yield from self.register.procedure_read(pid)
        return 1 if value == SET_FLAG and not is_bottom(value) else 0

    def op(self, pid: int, opname: str, *args: Any) -> Program:
        """Recorded operation entry point."""
        from repro.sim.process import call

        procedure = getattr(self, f"procedure_{opname}")(pid, *args)
        return call(self.name, opname, tuple(args), procedure)


class QuorumTestOrSet(AlgorithmBase):
    """The natural SWMR-register candidate attacked by Theorem 29 (E5).

    This is the terminating witness-quorum algorithm one would write
    without the paper's machinery:

    * ``Set``: the setter writes 1 into its flag register ``S`` and
      returns once it counts ``n - f`` witnesses (it cannot wait for
      more — ``f`` processes may be Byzantine-silent).
    * Witness rule (helper): a process writes 1 into its witness register
      ``W_j`` when it sees ``S = 1``, or when at least ``adopt_threshold``
      (default ``f + 1``) witness registers hold 1.
    * ``Test``: scan all witness registers repeatedly for up to
      ``patience`` scans; return 1 as soon as ``accept_threshold``
      (default ``n - f``) witnesses are seen, else 0.

    For ``n > 3f`` this object satisfies Lemma 28 against the adversary
    scripts we field (the relay chain ``n-f >= 2f+1 -> f+1 correct
    witnesses -> everyone adopts`` goes through). For ``n = 3f`` the
    Figure 1 histories break it for *every* threshold choice — which is
    the content of Theorem 29, made executable.

    ``patience`` bounds the Test scan count so the operation always
    terminates; the impossibility proof allows non-terminating
    implementations too, but a terminating candidate makes the safety
    violation (rather than a hang) observable.
    """

    OPERATIONS = ("set", "test")
    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        system: System,
        name: str = "tos-q",
        setter: int = 1,
        f: Optional[int] = None,
        accept_threshold: Optional[int] = None,
        adopt_threshold: Optional[int] = None,
        patience: int = 16,
    ):
        super().__init__(system, name, writer=setter, f=f, initial=0)
        self.accept_threshold = (
            self.n - self.f if accept_threshold is None else accept_threshold
        )
        self.adopt_threshold = (
            self.f + 1 if adopt_threshold is None else adopt_threshold
        )
        self.patience = patience
        # Effects are frozen values, and Set/Test/Help yield the same
        # reads thousands of times per explored schedule — pre-build one
        # instance per register instead of formatting the register name
        # and constructing a fresh dataclass on every yield.
        self._read_flag = ReadRegister(self.reg_flag())
        self._read_witness = tuple(
            ReadRegister(self.reg_witness(i)) for i in self.pids
        )

    # ------------------------------------------------------------------
    def reg_flag(self) -> str:
        """``S`` — the setter's flag register."""
        return f"{self.name}/S"

    def reg_witness(self, i: int) -> str:
        """``W_i`` — process i's witness flag."""
        return f"{self.name}/W[{i}]"

    def register_specs(self) -> Iterable[RegisterSpec]:
        yield swmr(self.reg_flag(), self.writer, initial=0)
        for i in self.pids:
            yield swmr(self.reg_witness(i), i, initial=0)

    # ------------------------------------------------------------------
    def procedure_set(self, pid: int) -> Program:
        """Write the flag, wait for ``n - f`` witnesses, return done.

        The scan loops here and below keep an integer loop index ``i``:
        it is a fingerprint-relevant local (the state explorer must
        distinguish "suspended at witness 2" from "suspended at witness
        3"), while the pre-built read effects themselves abstract to a
        constant.
        """
        self._require_writer(pid)
        yield WriteRegister(self.reg_flag(), SET_FLAG)
        need = self.n - self.f
        while True:
            count = 0
            for i, read in enumerate(self._read_witness):
                if as_int((yield read)) == SET_FLAG:
                    count += 1
            if count >= need:
                return DONE

    def procedure_test(self, pid: int) -> Program:
        """Scan witnesses up to ``patience`` times; threshold decides."""
        accept = self.accept_threshold
        for _scan in range(self.patience):
            count = 0
            for i, read in enumerate(self._read_witness):
                if as_int((yield read)) == SET_FLAG:
                    count += 1
            if count >= accept:
                return 1
            yield PAUSE
        return 0

    def procedure_help(self, pid: int) -> Program:
        """Witness daemon: adopt on seeing the flag or a witness quorum."""
        read_own = self._read_witness[pid - 1]
        write_own = WriteRegister(self.reg_witness(pid), SET_FLAG)
        read_flag = self._read_flag
        adopt = self.adopt_threshold
        while True:
            own = as_int((yield read_own))
            if own != SET_FLAG:
                flag = as_int((yield read_flag))
                if flag == SET_FLAG:
                    yield write_own
                else:
                    count = 0
                    for i, read in enumerate(self._read_witness):
                        if as_int((yield read)) == SET_FLAG:
                            count += 1
                    if count >= adopt:
                        yield write_own
            yield PAUSE
