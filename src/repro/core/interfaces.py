"""Common machinery for the register algorithms of the paper.

All three algorithms (1: verifiable, 2: authenticated, 3: sticky) share a
skeleton: a distinguished writer ``p1``, readers ``p2 .. pn``, a family of
shared registers named under an instance prefix, per-process Help daemons,
and Verify/Read procedures that poll SWSR reply registers. This module
provides:

* :class:`AlgorithmBase` — register-name bookkeeping, installation,
  helper spawning, traced operation entry points.
* Defensive parsers (:func:`as_frozenset`, :func:`as_int`,
  :func:`as_reply_pair`) — a Byzantine process can store *anything* in the
  registers it owns, so correct code must never crash on malformed
  contents; it treats them as the most pessimistic well-formed value.
* Result constants ``DONE``/``SUCCESS``/``FAIL`` matching the paper's
  operation return values.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ProtocolViolation
from repro.sim.effects import Effect
from repro.sim.process import Program, call
from repro.sim.system import System
from repro.sim.values import BOTTOM, freeze

#: Return value of Write operations (Definitions 10, 15, 21).
DONE = "done"
#: Return values of Sign operations (Definition 10).
SUCCESS = "success"
FAIL = "fail"


def as_frozenset(value: Any) -> frozenset:
    """Interpret a register value as a set of values; garbage -> empty set.

    Used when reading witness-set registers (``R_i``) that a Byzantine
    owner may have filled with arbitrary data. An ill-typed value conveys
    no witnessed values, which is the safe reading.
    """
    if value.__class__ is frozenset or isinstance(value, frozenset):
        return value
    return frozenset()


def as_int(value: Any, default: int = 0) -> int:
    """Interpret a register value as an integer counter; garbage -> default.

    ``bool`` is rejected despite being an ``int`` subclass so a Byzantine
    ``True`` does not masquerade as counter 1 in a way that differs from
    the writer's own arithmetic.
    """
    # Exact-type fast path (one pointer compare) for the overwhelmingly
    # common case; subclasses of int (bool excluded) fall through to the
    # precise check.
    if value.__class__ is int:
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    return default


def as_reply_pair(value: Any) -> Tuple[Any, Optional[int]]:
    """Parse a helper-reply register ``R_jk`` as ``(payload, counter)``.

    Returns ``(payload, None)`` when malformed; a ``None`` counter never
    satisfies the ``c_j >= C_k`` exit condition, so garbage from a
    Byzantine helper simply never unblocks a waiting reader — exactly the
    behaviour of a helper that stays silent.
    """
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[1], int)
        and not isinstance(value[1], bool)
    ):
        return value[0], value[1]
    return None, None


class AlgorithmBase:
    """Shared structure of the paper's register implementations.

    Subclasses define their register families by overriding
    :meth:`register_specs` and implement the operation procedures. The
    base class owns naming, installation, the reader/writer role checks,
    and helper-daemon spawning.

    Args:
        system: The simulated system to install into.
        name: Instance prefix for register names (multiple register
            instances may coexist in one system).
        writer: Pid of the single writer (defaults to 1, as in the paper).
        f: Fault tolerance the instance is configured for; defaults to the
            system's declared ``f``. Experiments probing the ``n <= 3f``
            regime configure this explicitly.
        initial: Initial register value ``v0`` (``BOTTOM`` for sticky).
    """

    #: Operation names exposed via :meth:`op`; subclasses override.
    OPERATIONS: Tuple[str, ...] = ()

    def __init__(
        self,
        system: System,
        name: str,
        writer: int = 1,
        f: Optional[int] = None,
        initial: Any = None,
    ):
        if writer not in system.pids:
            raise ConfigurationError(f"writer pid {writer} not in system")
        self.system = system
        self.name = name
        self.writer = writer
        self.f = system.f if f is None else f
        if self.f < 0:
            raise ConfigurationError(f"f must be >= 0, got {self.f}")
        self.n = system.n
        self.initial = freeze(initial)
        self._installed = False
        self._pids_cache: Optional[Tuple[int, ...]] = None
        self._readers_cache: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def pids(self) -> Tuple[int, ...]:
        """All process ids participating in this register instance.

        Cached: the topology is fixed at construction, and the helper
        daemons iterate this on every poll loop.
        """
        cached = self._pids_cache
        if cached is None:
            cached = self._pids_cache = tuple(self.system.pids)
        return cached

    @property
    def readers(self) -> Tuple[int, ...]:
        """The reader pids (everyone but the writer); cached like pids."""
        cached = self._readers_cache
        if cached is None:
            cached = self._readers_cache = tuple(
                pid for pid in self.system.pids if pid != self.writer
            )
        return cached

    def quorum_accept(self) -> int:
        """``n - f`` — the acceptance threshold used throughout."""
        return self.n - self.f

    def witness_adoption(self) -> int:
        """``f + 1`` — enough replicas that one is guaranteed correct."""
        return self.f + 1

    # ------------------------------------------------------------------
    # Installation and helpers
    # ------------------------------------------------------------------
    def register_specs(self) -> Iterable[Any]:
        """The register family of this instance; subclasses override."""
        raise NotImplementedError

    def install(self) -> "AlgorithmBase":
        """Install all shared registers; idempotent guard included."""
        if self._installed:
            raise ConfigurationError(f"{self.name!r} already installed")
        self.system.install_registers(self.register_specs())
        self._installed = True
        return self

    def procedure_help(self, pid: int) -> Program:
        """The background Help daemon; subclasses override."""
        raise NotImplementedError

    def start_helpers(self, pids: Optional[Iterable[int]] = None) -> None:
        """Spawn Help daemons for the given pids (default: all correct).

        Byzantine processes do not get a correct helper by default — they
        are free to run an adversarial one from ``repro.adversary``.
        """
        targets = list(pids) if pids is not None else sorted(self.system.correct)
        for pid in targets:
            self.system.spawn(pid, f"help:{self.name}", self.procedure_help(pid))

    # ------------------------------------------------------------------
    # Traced operation entry point
    # ------------------------------------------------------------------
    def op(self, pid: int, opname: str, *args: Any) -> Program:
        """A recorded operation: Invoke + procedure + Respond.

        This is the public API clients compose into scripts::

            yield from reg.op(pid, "verify", v)
        """
        if opname not in self.OPERATIONS:
            raise ConfigurationError(
                f"{type(self).__name__} has no operation {opname!r}; "
                f"available: {self.OPERATIONS}"
            )
        procedure = getattr(self, f"procedure_{opname}")(pid, *args)
        return call(self.name, opname, tuple(freeze(a) for a in args), procedure)

    # ------------------------------------------------------------------
    # Role guards (sanity checks on *correct* programs only)
    # ------------------------------------------------------------------
    def _require_writer(self, pid: int) -> None:
        if pid != self.writer:
            raise ProtocolViolation(
                f"operation reserved to the writer p{self.writer}, "
                f"called by p{pid}"
            )

    def _require_reader(self, pid: int) -> None:
        if pid == self.writer:
            raise ProtocolViolation(
                f"operation reserved to readers, called by the writer p{pid}"
            )
