"""Algorithm 1: SWMR multivalued *verifiable* register (Section 5).

A verifiable register behaves as a normal SWMR atomic register and
additionally lets the writer ``Sign(v)`` any value it previously wrote,
and lets any reader ``Verify(v)`` whether ``v`` was signed — with the
validity / unforgeability / relay properties of unforgeable signatures
(Observations 11–13) but **without** signatures. Correct for ``n > 3f``
(Theorem 14).

Register families (writer ``p1``, readers ``p2 .. pn``):

=================  =======================  ==========================
Paper name         Simulator name           Role
=================  =======================  ==========================
``R*``             ``{name}/R*``            last written value
``R_i``            ``{name}/R[i]``          witness set of process i
                                            (``R_1`` doubles as the
                                            writer's signed-values set)
``R_ik``           ``{name}/R[i->k]``       SWSR reply channel i -> k
``C_k``            ``{name}/C[k]``          reader k's round counter
=================  =======================  ==========================

The implementation is line-faithful to Algorithm 1; comments cite line
numbers. The only representational liberty is that line 32's per-value
insertions are issued as a single merged set write (one atomic write of
``R_j ∪ {v, ...}``), which is observably equivalent because the values
are inserted into the same register in the same step interval.

An *ablation* flag ``reset_set0`` (default True) disables the
set0-resetting mechanism when False, degrading Verify to the naive
"count votes, never revisit" strategy of Section 5.1's broken partial
algorithm — experiment E11 shows that variant violates the relay
property under a colluding adversary.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.interfaces import (
    DONE,
    FAIL,
    SUCCESS,
    AlgorithmBase,
    as_frozenset,
    as_int,
    as_reply_pair,
)
from repro.sim.effects import PAUSE, Pause, ReadRegister, WriteRegister
from repro.sim.process import Program
from repro.sim.registers import RegisterSpec, swmr, swsr
from repro.sim.values import freeze


class VerifiableRegister(AlgorithmBase):
    """Line-faithful implementation of Algorithm 1.

    Operations: ``write`` / ``read`` (writer / any reader), ``sign``
    (writer), ``verify`` (any reader). The Help daemon must be running on
    every correct process for Verify to terminate (Theorem 43).
    """

    OPERATIONS = ("write", "read", "sign", "verify")

    def __init__(
        self,
        system,
        name: str = "vreg",
        writer: int = 1,
        f: Optional[int] = None,
        initial: Any = None,
        reset_set0: bool = True,
    ):
        super().__init__(system, name, writer=writer, f=f, initial=initial)
        #: Writer-local set ``r*`` of previously written values (line 2).
        self._written: Set[Any] = set()
        #: Process-local shadow of ``R_1``'s intended content. Two
        #: coroutines of the writer's process write ``R_1`` — Sign
        #: (line 5) and the writer's own Help daemon (line 32) — and in
        #: the paper a process is *sequential* (help steps run outside
        #: operation intervals, Section 3.3), so their read-modify-write
        #: pairs never interleave. The simulator schedules the two
        #: coroutines freely, which would let one clobber the other's
        #: update (losing a signed value forever and violating validity,
        #: Obs 11); both therefore merge through this shared set so every
        #: write of ``R_1`` carries the full union.
        self._r1_shadow: Set[Any] = set()
        #: E11 ablation switch; True is the paper's algorithm.
        self.reset_set0 = reset_set0
        # Hot-path caches: the poll loops below yield reads of the same
        # registers thousands of times per run; effects are frozen
        # values, so one instance per register serves every yield, and
        # the f-string register names are built once instead of per
        # loop iteration.
        self._read_star = ReadRegister(self.reg_star())
        self._read_counter = {
            k: ReadRegister(self.reg_counter(k)) for k in self.readers
        }
        self._read_witness = {
            i: ReadRegister(self.reg_witness(i)) for i in self.pids
        }
        self._read_reply = {
            (j, k): ReadRegister(self.reg_reply(j, k))
            for j in self.pids
            for k in self.readers
        }
        self._counter_names = {k: self.reg_counter(k) for k in self.readers}
        self._witness_names = {i: self.reg_witness(i) for i in self.pids}
        self._reply_names = {
            (j, k): self.reg_reply(j, k)
            for j in self.pids
            for k in self.readers
        }

    # ------------------------------------------------------------------
    # Register naming
    # ------------------------------------------------------------------
    def reg_star(self) -> str:
        """``R*`` — the writer's current-value register."""
        return f"{self.name}/R*"

    def reg_witness(self, i: int) -> str:
        """``R_i`` — process i's witness-set register."""
        return f"{self.name}/R[{i}]"

    def reg_reply(self, j: int, k: int) -> str:
        """``R_jk`` — SWSR reply channel written by j, read by reader k."""
        return f"{self.name}/R[{j}->{k}]"

    def reg_counter(self, k: int) -> str:
        """``C_k`` — reader k's asker counter."""
        return f"{self.name}/C[{k}]"

    def register_specs(self) -> Iterable[RegisterSpec]:
        yield swmr(self.reg_star(), self.writer, initial=self.initial)
        for i in self.pids:
            yield swmr(self.reg_witness(i), i, initial=frozenset())
        for j in self.pids:
            for k in self.readers:
                yield swsr(
                    self.reg_reply(j, k), j, k, initial=(frozenset(), 0)
                )
        for k in self.readers:
            yield swmr(self.reg_counter(k), k, initial=0)

    # ------------------------------------------------------------------
    # Writer procedures
    # ------------------------------------------------------------------
    def procedure_write(self, pid: int, v: Any) -> Program:
        """``Write(v)`` — lines 1–3."""
        self._require_writer(pid)
        v = freeze(v)
        yield WriteRegister(self.reg_star(), v)  # line 1: R* <- v
        self._written.add(v)  # line 2: r* <- r* U {v} (writer-local)
        return DONE  # line 3

    def procedure_sign(self, pid: int, v: Any) -> Program:
        """``Sign(v)`` — lines 4–8."""
        self._require_writer(pid)
        v = freeze(v)
        if v in self._written:  # line 4: if v in r*
            # line 5: R1 <- R1 U {v}, via the process-local shadow (see
            # __init__): the writer's Help daemon also writes R1, so a
            # read-modify-write here could be interleaved and lost.
            self._r1_shadow.add(v)
            yield WriteRegister(
                self.reg_witness(self.writer), frozenset(self._r1_shadow)
            )
            return SUCCESS  # line 6
        return FAIL  # lines 7-8

    # ------------------------------------------------------------------
    # Reader procedures
    # ------------------------------------------------------------------
    def procedure_read(self, pid: int) -> Program:
        """``Read()`` — lines 9–10."""
        self._require_reader(pid)
        value = yield ReadRegister(self.reg_star())  # line 9
        return value  # line 10

    def procedure_verify(self, pid: int, v: Any) -> Program:
        """``Verify(v)`` — lines 11–24.

        The round structure is exactly the paper's: ``set1`` accumulates
        processes that ever replied "yes" (their reply set contained
        ``v``); ``set0`` holds processes that replied "no" *since the last
        yes*; a yes resets ``set0`` (unless the E11 ablation disables the
        reset), giving "no"-voters a chance to re-vote.
        """
        self._require_reader(pid)
        v = freeze(v)
        set0: Set[int] = set()
        set1: Set[int] = set()
        read_counter = self._read_counter[pid]
        counter_name = self._counter_names[pid]
        read_reply = self._read_reply
        pids = self.pids
        while True:  # line 12
            counter = as_int((yield read_counter))
            ck = counter + 1
            yield WriteRegister(counter_name, ck)  # line 13
            # Lines 14-17: repeat reading R_jk of every j not in
            # set1 U set0 until one reply carries c_j >= C_k.
            chosen_j: Optional[int] = None
            chosen_reply: frozenset = frozenset()
            while chosen_j is None:
                progressed = False
                for j in pids:
                    if j in set0 or j in set1:
                        continue
                    progressed = True
                    raw = yield read_reply[(j, pid)]  # line 16
                    payload, cj = as_reply_pair(raw)
                    if cj is not None and cj >= ck:  # line 17
                        chosen_j = j
                        chosen_reply = as_frozenset(payload)
                        break
                if not progressed:
                    # Every process is already classified yet neither
                    # threshold was met — possible only when n <= 3f.
                    # Keep the coroutine schedulable (the operation
                    # legitimately never returns; see Theorem 29 and the
                    # E5 experiments).
                    yield Pause()
            if v in chosen_reply:  # line 18
                set1.add(chosen_j)  # line 19
                if self.reset_set0:
                    set0 = set()  # line 20
            else:  # line 21
                set0.add(chosen_j)  # line 22
            if len(set1) >= self.n - self.f:  # line 23
                return True
            if len(set0) > self.f:  # line 24
                return False

    # ------------------------------------------------------------------
    # Help daemon
    # ------------------------------------------------------------------
    def procedure_help(self, pid: int) -> Program:
        """``Help()`` — lines 25–36; runs forever in the background.

        ``pid`` becomes a witness of a value ``v`` when the writer's
        register ``R_1`` contains ``v`` ("the writer signed it") or at
        least ``f + 1`` witness registers contain it (at least one
        correct process witnessed it), and then publishes its witness set
        to every current asker.
        """
        readers = self.readers
        pids = self.pids
        read_counter = self._read_counter
        read_witness = self._read_witness
        reply_names = self._reply_names
        own_witness_read = read_witness[pid]
        own_witness_name = self._witness_names[pid]
        prev_ck: Dict[int, int] = {k: 0 for k in readers}  # line 25
        while True:  # line 26
            cks: Dict[int, int] = {}
            for k in readers:  # line 27
                cks[k] = as_int((yield read_counter[k]))
            askers = [k for k in readers if cks[k] > prev_ck[k]]  # line 28
            if not askers:  # line 29
                yield PAUSE
                continue
            witness_sets: Dict[int, frozenset] = {}
            for i in pids:  # line 30
                witness_sets[i] = as_frozenset((yield read_witness[i]))
            signed_by_writer = witness_sets[self.writer]
            candidates: Set[Any] = set()
            for witnessed in witness_sets.values():
                candidates |= witnessed
            adopted = {
                v
                for v in candidates
                # line 31: v in r1 or witnessed by >= f+1 processes
                if v in signed_by_writer
                or sum(1 for i in pids if v in witness_sets[i])
                >= self.f + 1
            }
            own_now = as_frozenset((yield own_witness_read))
            if pid == self.writer:
                # R1's other writer is Sign on the same process; merge
                # through the shared shadow so a concurrently signed
                # value is never clobbered (see __init__).
                self._r1_shadow |= adopted
                merged = own_now | frozenset(self._r1_shadow)
            else:
                merged = own_now | adopted
            yield WriteRegister(own_witness_name, merged)  # line 32
            own_published = yield own_witness_read  # line 33
            for k in askers:  # line 34
                yield WriteRegister(
                    reply_names[(pid, k)], (own_published, cks[k])
                )  # line 35
                prev_ck[k] = cks[k]  # line 36
