"""The paper's primary contribution: registers with signature properties.

* :class:`VerifiableRegister` — Algorithm 1 (Write/Read/Sign/Verify).
* :class:`AuthenticatedRegister` — Algorithm 2 (atomically signed writes).
* :class:`StickyRegister` — Algorithm 3 (write-once uniqueness).
* Test-or-set wrappers — Section 10's possibility direction.
* :class:`SignedVerifiableRegister` — signature-based comparator.
* :class:`NaiveVerifiableRegister` — the erasable strawman of Section 5.1.
"""

from repro.core.authenticated import (
    AuthenticatedRegister,
    max_tuple,
    timestamped_values,
    well_formed_tuples,
)
from repro.core.interfaces import (
    DONE,
    FAIL,
    SUCCESS,
    AlgorithmBase,
    as_frozenset,
    as_int,
    as_reply_pair,
)
from repro.core.naive import NaiveQuorumVerifiableRegister, NaiveVerifiableRegister
from repro.core.signature_baseline import SignatureOracle, SignedVerifiableRegister
from repro.core.sticky import StickyRegister
from repro.core.test_or_set import (
    SET_FLAG,
    QuorumTestOrSet,
    TestOrSetFromAuthenticated,
    TestOrSetFromSticky,
    TestOrSetFromVerifiable,
)
from repro.core.verifiable import VerifiableRegister

__all__ = [
    "AlgorithmBase",
    "AuthenticatedRegister",
    "DONE",
    "FAIL",
    "NaiveQuorumVerifiableRegister",
    "NaiveVerifiableRegister",
    "QuorumTestOrSet",
    "SET_FLAG",
    "SUCCESS",
    "SignatureOracle",
    "SignedVerifiableRegister",
    "StickyRegister",
    "TestOrSetFromAuthenticated",
    "TestOrSetFromSticky",
    "TestOrSetFromVerifiable",
    "VerifiableRegister",
    "as_frozenset",
    "as_int",
    "as_reply_pair",
    "max_tuple",
    "timestamped_values",
    "well_formed_tuples",
]
