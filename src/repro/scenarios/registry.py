"""The unified scenario registry: specs, builders, and records.

This module is the single place where "what is a scenario?" is
answered for every layer of the reproduction:

* :class:`Scenario` — the picklable ``(name, params)`` *spec* every
  engine consumes (systematic explorer, swarm fuzzer, shrinker,
  campaign cells, corpus replays). ``Scenario.build`` resolves the
  name through :data:`SCENARIO_BUILDERS`, the builder registry that
  :mod:`repro.explore.scenarios` (theorem29 / register workloads) and
  :mod:`repro.scenarios.apps` (snapshot / asset transfer) populate via
  :func:`register_builder`.
* :class:`ScenarioRecord` — the declarative *registry record*: one
  record pins topology ``(n, f)``, implementation family, adversary
  behaviour and workload (inside the spec's params), engine, expected
  verdict, and which consumers (campaign / explore / bench / smoke)
  include it. The family's oracle binding is resolved through
  :mod:`repro.scenarios.bindings`, so a record fully determines a
  runnable, checkable, differentially-judged scenario.
* :func:`register` / :func:`resolve` / :func:`grid` — the registry API
  the consumers query: ``repro.campaign.default_matrix`` is a
  ``grid(consumer="campaign")`` call, the analysis CLI's ``scenarios``
  subcommand lists ``all_records()``, the bench matrix pulls its
  app-throughput cells from ``grid(consumer="bench")``, and corpus
  entries resolve their historical scenario labels through
  :func:`resolve_spec`.

Import layering: this module sits *below* the builder modules (it
imports only ``repro.errors``), so explore/campaign/analysis can all
import it without cycles. The default catalog
(:mod:`repro.scenarios.catalog`) is loaded lazily on first query, which
is what lets the builder modules import this one at module load time.

Labels are stable identity: a record's :meth:`ScenarioRecord.label`
(and the spec's :meth:`Scenario.label`) are the strings campaign
progress lines, corpus entry ids and violation fingerprints are built
from, so they are append-only — changing how an existing label renders
would orphan the committed corpus.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Engines a record may run under. ``swarm``/``systematic`` are the
#: virtual-time engines (see ``repro.explore``); ``live`` marks records
#: executed by the wall-clock socket runtime (``repro.net``) — they
#: carry a :class:`repro.net.LiveProfile` in their params and are driven
#: through ``python -m repro.analysis net``, not through a scheduler.
ENGINES = ("swarm", "systematic", "live")

# Systematic-explorer reduction modes a record may pin. Mirrors
# ``repro.explore.explorer.REDUCTIONS`` (this module is the dependency
# root and cannot import the explorer; the differential test asserts
# the two never drift).
REDUCTIONS = ("sleep", "dpor", "dpor+symmetry")

#: The consumer axes a record can opt into. ``smoke`` is the bounded CI
#: subset of ``campaign``; ``explore``/``bench`` mark the records the
#: exploration CLI and the perf matrix draw from; ``net`` marks the
#: live-network smoke cells the ``net`` CLI pins.
CONSUMERS = ("campaign", "explore", "bench", "smoke", "net")

#: Registry of scenario builders, keyed by spec name. Builders must be
#: importable from worker processes (top level of their module) and
#: accept ``(scheduler, ctx=..., early_exit=..., **params)``.
SCENARIO_BUILDERS: Dict[str, Callable[..., Any]] = {}

#: Catalog load state: "unloaded" -> "loading" -> "loaded". The
#: intermediate state guards re-entrant queries issued *while* the
#: catalog module executes; a failed load resets to "unloaded" so the
#: registry never silently serves a truncated record set.
_catalog_state = "unloaded"


def _ensure_catalog() -> None:
    """Load the default catalog (builders + records) exactly once.

    Lazy so that the builder modules — which import *this* module for
    :func:`register_builder` — can be imported by the catalog without a
    cycle. Any registry query or unknown-name lookup triggers it. A
    load that raises is retried on the next query (registration is
    idempotent for identical records), never cached as done — a
    partially registered catalog must not masquerade as coverage.
    """
    global _catalog_state
    if _catalog_state != "unloaded":
        return
    _catalog_state = "loading"
    try:
        import repro.scenarios.catalog  # noqa: F401  (registers on import)
    except BaseException:
        _catalog_state = "unloaded"
        raise
    _catalog_state = "loaded"


def register_builder(
    name: str, builder: Callable[..., Any], replace_existing: bool = False
) -> None:
    """Register a scenario builder under ``name``.

    Re-registering the *same* callable is a no-op (modules may be
    re-imported); binding a name to a different builder raises unless
    ``replace_existing`` — silent rebinding would change what every
    recorded label means.
    """
    existing = SCENARIO_BUILDERS.get(name)
    if existing is not None and existing is not builder and not replace_existing:
        raise ConfigurationError(
            f"scenario builder {name!r} is already registered "
            f"to {existing!r}"
        )
    SCENARIO_BUILDERS[name] = builder


def _builder_for(name: str) -> Callable[..., Any]:
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        _ensure_catalog()
        builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; "
            f"known: {', '.join(sorted(SCENARIO_BUILDERS))}"
        )
    return builder


@dataclass(frozen=True)
class Scenario:
    """Picklable scenario spec: a registry name plus keyword parameters."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def build(
        self,
        scheduler: Any,
        ctx: Optional[Any] = None,
        early_exit: bool = False,
    ) -> Any:
        """Construct a fresh run of this scenario under ``scheduler``.

        ``ctx`` shares the oracle layer's memo caches across runs;
        ``early_exit`` arms the incremental property monitor so the run
        stops as soon as its partial history is irrecoverably violating
        (verdict-preserving: the final check on the truncated history
        reports the violation). Builders without an incremental monitor
        for their oracle accept and ignore the flag.
        """
        builder = _builder_for(self.name)
        return builder(
            scheduler, ctx=ctx, early_exit=early_exit, **dict(self.params)
        )

    def label(self) -> str:
        """Human-readable spec rendering for tables and reports."""
        if not self.params:
            return self.name
        rendered = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}({rendered})"


def make_scenario(name: str, **params: Any) -> Scenario:
    """Build a :class:`Scenario` spec, validating the name eagerly."""
    _builder_for(name)  # raises on unknown names
    return Scenario(name=name, params=tuple(sorted(params.items())))


def resolve_spec(name: str, params: Sequence[Tuple[str, Any]]) -> Scenario:
    """Rebuild a scenario spec from its serialized ``(name, params)``.

    This is the corpus replay path: entries store the exact (already
    sorted) param tuples their label and fingerprint were derived from,
    so the params are preserved verbatim — only the *name* is validated
    against the builder registry, loudly, so an entry referencing a
    retired scenario fails at load time rather than replaying wrongly.
    """
    _builder_for(name)
    return Scenario(name=name, params=tuple(params))


# ----------------------------------------------------------------------
# Declarative registry records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioRecord:
    """One registry record: a fully determined, differentially judged cell.

    Attributes:
        family: Implementation family under test; resolves the oracle
            binding through ``repro.scenarios.bindings``.
        n: Process count of the scenario's topology.
        f: Fault bound of the scenario's topology.
        spec: The runnable :class:`Scenario` (adversary behaviour and
            workload/driver program live in its params).
        engine: ``"swarm"`` or ``"systematic"`` (see ``repro.explore``).
        expect_violation: The differential expectation — what the paper
            proves for this cell.
        consumers: Which layers include the record (subset of
            :data:`CONSUMERS`).
        symmetry: Interchangeable process groups — tuples of pids whose
            initial coroutine/register/mailbox configurations map onto
            each other under any permutation of the group. The
            systematic explorer's ``reduction="dpor+symmetry"`` folds
            backtracks over these groups
            (:class:`repro.explore.dpor.SymmetryFolder`). Deliberately
            *outside* the fingerprint basis: a symmetry declaration is
            a search-strategy hint, not cell behaviour (all reduction
            modes reach identical verdicts), and adding one must not
            orphan stored cell fingerprints.
        reduction: Which systematic-explorer reduction the record's
            campaign cell runs under (``"sleep"``, ``"dpor"`` or
            ``"dpor+symmetry"``; ignored by swarm cells). Like
            ``symmetry``, a search-strategy hint outside the
            fingerprint basis — cells registered before the dpor
            reductions existed keep their identity. The deferred
            broadcast systematic cells *require* a dpor mode: their
            bounded tree is too large for the sleep baseline to drain
            within a campaign budget.
    """

    family: str
    n: int
    f: int
    spec: Scenario
    engine: str = "swarm"
    expect_violation: bool = False
    consumers: Tuple[str, ...] = ("campaign",)
    symmetry: Tuple[Tuple[int, ...], ...] = ()
    reduction: str = "sleep"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {', '.join(ENGINES)}"
            )
        unknown = [c for c in self.consumers if c not in CONSUMERS]
        if unknown:
            raise ConfigurationError(
                f"unknown consumer(s) {unknown!r}; known: {', '.join(CONSUMERS)}"
            )
        if self.reduction not in REDUCTIONS:
            raise ConfigurationError(
                f"unknown reduction {self.reduction!r}; "
                f"known: {', '.join(REDUCTIONS)}"
            )
        if self.n < 1 or self.f < 0:
            raise ConfigurationError(
                f"bad topology n={self.n}, f={self.f} for {self.spec.label()}"
            )

    def label(self) -> str:
        """Stable record identity: ``family/engine:scenario-label``.

        Matches ``repro.campaign.CampaignCell.label()`` for the cell the
        record expands to, so campaign progress lines and registry
        lookups speak the same language.
        """
        return f"{self.family}/{self.engine}:{self.spec.label()}"

    def fingerprint(self) -> str:
        """Short digest of everything that determines the cell's behaviour."""
        basis = (
            self.family,
            self.n,
            self.f,
            self.engine,
            self.expect_violation,
            self.spec.label(),
        )
        return hashlib.blake2b(repr(basis).encode(), digest_size=6).hexdigest()

    def seeded(self, seed0: int) -> "ScenarioRecord":
        """This record with its workload seed re-pinned to ``seed0``.

        Records are registered at the default seed; campaign callers can
        re-seed the whole matrix without touching the registry. Specs
        without a ``seed`` param (theorem29) are returned unchanged —
        their schedule space is seeded by the engines, not the builder.
        """
        params = dict(self.spec.params)
        if "seed" not in params or params["seed"] == seed0:
            return self
        params["seed"] = seed0
        spec = Scenario(
            name=self.spec.name, params=tuple(sorted(params.items()))
        )
        return replace(self, spec=spec)

    def describe(self) -> str:
        """One line for CLI listings."""
        expect = "violation" if self.expect_violation else "clean"
        consumers = ",".join(self.consumers)
        return (
            f"{self.label()}  n={self.n} f={self.f}  expect={expect}  "
            f"consumers={consumers}"
        )


#: Registered records, keyed by label, in registration order (the order
#: ``default_matrix`` materializes cells in).
_RECORDS: Dict[str, ScenarioRecord] = {}


def register(
    record: ScenarioRecord, replace_existing: bool = False
) -> ScenarioRecord:
    """Add ``record`` to the registry; returns it for chaining.

    Re-registering an *identical* record is a no-op; registering a
    different record under an existing label raises unless
    ``replace_existing`` (labels are stable identity — see module doc).

    The default catalog is loaded first (no-op while the catalog itself
    is registering), so caller records always *append* after the stock
    records — registration order is contract: ``default_matrix``
    materializes cells in it, and the historical prefix is pinned.
    """
    _ensure_catalog()
    label = record.label()
    existing = _RECORDS.get(label)
    if existing is not None and existing != record and not replace_existing:
        raise ConfigurationError(
            f"scenario record {label!r} is already registered with "
            f"different settings"
        )
    _RECORDS[label] = record
    return record


def resolve(label: str) -> ScenarioRecord:
    """The registered record for ``label``; raises if unknown."""
    _ensure_catalog()
    record = _RECORDS.get(label)
    if record is None:
        raise ConfigurationError(
            f"unknown scenario record {label!r}; "
            f"{len(_RECORDS)} records registered "
            f"(list them with `python -m repro.analysis scenarios --list`)"
        )
    return record


def all_records() -> List[ScenarioRecord]:
    """Every registered record, in registration order."""
    _ensure_catalog()
    return list(_RECORDS.values())


def grid(
    consumer: Optional[str] = None,
    families: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
    expect_violation: Optional[bool] = None,
) -> List[ScenarioRecord]:
    """Query the registry: records matching every given filter, in order.

    ``consumer`` filters on membership in ``record.consumers``;
    ``families`` on the implementation family; ``engine`` and
    ``expect_violation`` on their exact values. ``grid()`` with no
    arguments is :func:`all_records`.
    """
    if consumer is not None and consumer not in CONSUMERS:
        raise ConfigurationError(
            f"unknown consumer {consumer!r}; known: {', '.join(CONSUMERS)}"
        )
    wanted = None if families is None else set(families)
    records = []
    for record in all_records():
        if consumer is not None and consumer not in record.consumers:
            continue
        if wanted is not None and record.family not in wanted:
            continue
        if engine is not None and record.engine != engine:
            continue
        if expect_violation is not None and (
            record.expect_violation is not expect_violation
        ):
            continue
        records.append(record)
    return records


def known_scenarios() -> Tuple[str, ...]:
    """Every registered scenario builder name, sorted."""
    _ensure_catalog()
    return tuple(sorted(SCENARIO_BUILDERS))


def registered_families(consumer: Optional[str] = None) -> Tuple[str, ...]:
    """Every implementation family with at least one record, in order.

    With ``consumer``, only families with at least one record reaching
    that consumer — e.g. ``consumer="campaign"`` excludes live-only
    families (engine ``"live"``), whose cells run on wall clocks and
    can never expand into campaign cells.
    """
    seen: Dict[str, None] = {}
    for record in all_records():
        if consumer is not None and consumer not in record.consumers:
            continue
        seen.setdefault(record.family, None)
    return tuple(seen)
