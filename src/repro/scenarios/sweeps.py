"""Registry-owned adversary-behaviour grids (the E1–E3 sweep axis).

``SWEEP_ADVERSARIES`` is the canonical per-register-kind list of
``(writer_adversary, reader_adversaries)`` mixes that the randomized
correctness sweeps (``repro.analysis.experiments``), the explorer's
``adversary_grid`` and the campaign's register cells all cycle through.
It lived in ``repro.analysis.experiments``; the registry owns it now so
every consumer derives the same grids from the same records.

``EXTRA_SWEEP_ADVERSARIES`` holds the *campaign-growth* grids: newer
behaviour mixes (from :mod:`repro.adversary.behaviors`) that extend the
default conformance matrix without disturbing the original sweeps —
the E1–E3 tables and the pre-existing campaign cells stay byte-stable
because the extras are appended as separate registry records, never
spliced into the base lists.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: The adversary mixes each sweep cycles through, per register kind.
SWEEP_ADVERSARIES: Dict[str, List[Tuple[str, Dict[int, str]]]] = {
    "verifiable": [
        ("none", {}),
        ("deny", {}),
        ("equivocate", {}),
        ("none", {2: "lying"}),
        ("none", {3: "flipflop"}),
        ("garbage", {2: "garbage"}),
    ],
    "authenticated": [
        ("none", {}),
        ("deny", {}),
        ("none", {2: "lying"}),
        ("none", {3: "stonewall"}),
        ("garbage", {2: "garbage"}),
    ],
    "sticky": [
        ("none", {}),
        ("equivocate", {}),
        ("none", {2: "lying"}),
        ("silent", {}),
        ("garbage", {2: "garbage"}),
    ],
}

#: Campaign-growth mixes appended as extra registry records (kept out of
#: the base sweeps; see module doc). Every mix here targets a behaviour
#: the base grid of that kind never exercised.
EXTRA_SWEEP_ADVERSARIES: Dict[str, List[Tuple[str, Dict[int, str]]]] = {
    "verifiable": [
        ("silent", {}),
        ("none", {2: "stonewall"}),
    ],
    "authenticated": [
        ("silent", {}),
        ("none", {4: "flipflop"}),
    ],
    "sticky": [
        ("none", {2: "stonewall"}),
    ],
}
