"""The default scenario catalog: every record the stock consumers use.

Importing this module (which :func:`repro.scenarios.registry._ensure_catalog`
does lazily on the first registry query) registers:

* the register-family adversary grids (Algorithms 1–3 at ``n = 4``,
  seed 0) — the E1–E3 sweep mixes, first two of each family also in the
  CI smoke subset;
* the signature baseline and the §5.1 naive strawman (the latter with
  its known-violating flip-flop cell);
* the Theorem 29 test-or-set boundary through both engines (violating
  at ``n = 3f``, clean at ``n = 3f + 1``);
* the campaign-growth adversary grids
  (:data:`repro.scenarios.sweeps.EXTRA_SWEEP_ADVERSARIES`) — appended
  after the historical cells so the pre-existing matrix prefix stays
  byte-identical;
* the application cells (atomic snapshot, asset transfer) at both
  fault boundaries, with their differential expectations pinned;
* the Byzantine-updater snapshot boundary (the embedded-scan freshness
  fix) and the broadcast families — appended after the PR-5 app cells,
  same prefix contract;
* the message-passing emulation under fault injection (clean under
  fair-lossy + retransmit and under ``<= f`` crash-stop, pinned
  ``STALLED`` under quorum-starving plans) — appended after the
  broadcast families, same prefix contract;
* the live-network runtime's smoke cells (``engine="live"``,
  ``consumers=("net",)`` — wall-clock socket clusters driven by
  ``python -m repro.analysis net``, never by a scheduler) — appended
  last.

Registration order is contract: ``repro.campaign.default_matrix`` is a
``grid(consumer=...)`` query and materializes cells in this order, and
the historical prefix (everything up to the extras) must match the
pre-registry matrix cell for cell.
"""

from __future__ import annotations

from typing import Tuple

from repro.scenarios import sweeps
from repro.scenarios.bindings import kind_for
from repro.scenarios.registry import ScenarioRecord, make_scenario, register

# Importing the builder modules registers their builders; the explore
# module also provides the grid helper the register families reuse.
from repro.explore.scenarios import adversary_grid
import repro.scenarios.apps  # noqa: F401  (registers snapshot/asset builders)
import repro.scenarios.mp_emulation  # noqa: F401  (registers mp_register builder)
import repro.scenarios.net_live  # noqa: F401  (registers net_cluster builder)

#: How many adversary mixes per register family the CI smoke subset keeps.
SMOKE_MIXES = 2


def _register_alg_families() -> None:
    """Algorithms 1–3: the E1–E3 adversary grids at n = 4, seed 0."""
    for family in ("verifiable", "authenticated", "sticky"):
        kind = kind_for(family)
        for index, spec in enumerate(adversary_grid(kind, n=4, seeds=(0,))):
            consumers: Tuple[str, ...] = ("campaign", "explore")
            if index < SMOKE_MIXES:
                consumers += ("smoke",)
            register(
                ScenarioRecord(
                    family=family,
                    n=4,
                    f=1,
                    spec=spec,
                    engine="swarm",
                    expect_violation=False,
                    consumers=consumers,
                )
            )


def _register_baseline_and_strawman() -> None:
    """The signature baseline (clean) and the naive strawman boundary."""
    for readers in ((), ((4, "silent"),)):
        register(
            ScenarioRecord(
                family="signature_baseline",
                n=4,
                f=1,
                spec=make_scenario(
                    "register",
                    kind=kind_for("signature_baseline"),
                    n=4,
                    seed=0,
                    reader_adversaries=readers,
                ),
                engine="swarm",
                expect_violation=False,
                consumers=("campaign", "smoke"),
            )
        )
    # The naive strawman: clean without an adversary, broken by the
    # flip-flop collusion (Section 5.1 / E11).
    for readers, expect in (((), False), (((4, "flipflop"),), True)):
        register(
            ScenarioRecord(
                family="naive",
                n=4,
                f=1,
                spec=make_scenario(
                    "register",
                    kind=kind_for("naive"),
                    n=4,
                    seed=0,
                    reader_adversaries=readers,
                ),
                engine="swarm",
                expect_violation=expect,
                consumers=("campaign", "smoke"),
            )
        )


def _register_test_or_set() -> None:
    """Theorem 29 through both engines: violating at 3f, clean at 3f+1."""
    violating = make_scenario("theorem29", f=1)
    control = make_scenario("theorem29", f=1, extra_correct=True)
    for engine in ("swarm", "systematic"):
        register(
            ScenarioRecord(
                family="test_or_set",
                n=3,
                f=1,
                spec=violating,
                engine=engine,
                expect_violation=True,
                consumers=("campaign", "explore", "bench", "smoke"),
            )
        )
        register(
            ScenarioRecord(
                family="test_or_set",
                n=4,
                f=1,
                spec=control,
                engine=engine,
                expect_violation=False,
                consumers=("campaign", "explore", "bench", "smoke"),
            )
        )


def _register_extra_grids() -> None:
    """Campaign-growth adversary mixes (appended; never in the E1–E3 base).

    Expanded through the same :func:`adversary_grid` filter and spec
    construction as the base grids, just over the extras table.
    """
    for family in ("verifiable", "authenticated", "sticky"):
        kind = kind_for(family)
        extras = sweeps.EXTRA_SWEEP_ADVERSARIES.get(kind, ())
        for spec in adversary_grid(kind, n=4, seeds=(0,), mixes=extras):
            register(
                ScenarioRecord(
                    family=family,
                    n=4,
                    f=1,
                    spec=spec,
                    engine="swarm",
                    expect_violation=False,
                    consumers=("campaign",),
                )
            )


def _register_apps() -> None:
    """Snapshot and asset transfer at both fault boundaries.

    Differential expectations (pinned; asserted by the test suite and
    the smoke campaign):

    * **asset transfer** carries the paper's boundary: under the
      equivocating-owner double-spend attack the sticky logs are
      fork-free at ``n = 3f + 1`` (clean — the settled Byzantine credit
      is explainable as one synthesized transfer) but forkable at
      ``n = 3f``, where two correct auditors settle *different* credits
      (violation, the non-equivocation / Obs 24 break);
    * **snapshot** is pinned clean at *both* boundaries, under the
      strongest honest behaviour we have (witness-then-deny): a
      segment with a *correct* owner is served by the owner's and the
      reader's helpers, which already meet the ``n - f`` quorum at
      ``n = 3f`` — the object's ``n > 3f`` requirement is owed to
      Byzantine-*updater* cases, which the ``byzantine_updater`` cells
      (see :func:`_register_freshness_boundary`) now judge directly.
    """
    for name, n, f, byzantine, expect in (
        ("snapshot", 4, 1, ((4, "deny"),), False),
        ("snapshot", 3, 1, ((3, "deny"),), False),
        ("asset_transfer", 4, 1, ((4, "equivocate"),), False),
        ("asset_transfer", 3, 1, ((3, "equivocate"),), True),
    ):
        register(
            ScenarioRecord(
                family=name,
                n=n,
                f=f,
                spec=make_scenario(
                    name,
                    n=n,
                    f=f,
                    seed=0,
                    byzantine=byzantine,
                ),
                engine="swarm",
                expect_violation=expect,
                consumers=("campaign", "bench", "smoke"),
            )
        )


def _register_freshness_boundary() -> None:
    """The Byzantine-updater snapshot cells (embedded-scan freshness).

    A churning Byzantine updater serves *authentic* updates whose
    embedded scans replay the all-initial view. Pre-fix,
    ``AtomicSnapshot._verify_embedded`` accepted them (authenticity
    alone never bounds freshness) and correct scanners adopted stale
    views — a linearizability violation at *any* ``n``, which the
    ``verify_freshness=False`` cell pins VIOLATING at ``n = 3f + 1``
    (its shrunk counterexample lives in ``corpus/``). Post-fix the seq
    watermark blacklists the churner, and the default cells pin clean
    at both ``n = 3f`` and ``n = 3f + 1``.
    """
    for n, f in ((4, 1), (3, 1)):
        byzantine = ((n, "byzantine_updater"),)
        consumers: Tuple[str, ...] = ("campaign", "smoke")
        if n == 4:
            consumers += ("bench",)
        register(
            ScenarioRecord(
                family="snapshot",
                n=n,
                f=f,
                spec=make_scenario(
                    "snapshot", n=n, f=f, seed=0, byzantine=byzantine
                ),
                engine="swarm",
                expect_violation=False,
                consumers=consumers,
            )
        )
    register(
        ScenarioRecord(
            family="snapshot",
            n=4,
            f=1,
            spec=make_scenario(
                "snapshot",
                n=4,
                f=1,
                seed=0,
                byzantine=((4, "byzantine_updater"),),
                verify_freshness=False,
            ),
            engine="swarm",
            expect_violation=True,
            consumers=("campaign", "smoke"),
        )
    )


def _register_broadcast_families() -> None:
    """Both broadcast apps at the paper's boundary.

    Clean at ``n = 3f + 1`` under the equivocating *sender*; violating
    at ``n = 3f``, where the fork shows two correct receivers different
    messages for the same (sender, slot) — the integrity break the
    sticky registers exist to exclude. The facade relationship
    (reliable broadcast reuses the non-equivocating slot machinery)
    makes the two families a differential pair over one
    :class:`repro.spec.BroadcastSpec` oracle.
    """
    for family in ("broadcast", "reliable_broadcast"):
        for n, expect in ((4, False), (3, True)):
            consumers = ("campaign", "smoke")
            if not expect:
                consumers += ("bench",)
            register(
                ScenarioRecord(
                    family=family,
                    n=n,
                    f=1,
                    spec=make_scenario(
                        family,
                        n=n,
                        f=1,
                        seed=0,
                        byzantine=((n, "equivocate"),),
                    ),
                    engine="swarm",
                    expect_violation=expect,
                    consumers=consumers,
                )
            )
        # Vocabulary breadth beyond the boundary pair: the reader-side
        # stonewaller must be harmless to a correct sender's slots.
        register(
            ScenarioRecord(
                family=family,
                n=4,
                f=1,
                spec=make_scenario(
                    family, n=4, f=1, seed=0, byzantine=((4, "stonewall"),)
                ),
                engine="swarm",
                expect_violation=False,
                consumers=("campaign",),
            )
        )


def _register_mp_emulation() -> None:
    """The message-passing emulation under fault injection (PR 8).

    Five pinned cells (see :mod:`repro.scenarios.mp_emulation`):

    * reliable-network baseline — clean (the reference verdicts);
    * fair-lossy + duplication + reorder delays with the retransmit
      channel layer — clean, verdicts byte-identical to the baseline
      (the reliable-channel assumption rebuilt over lossy links);
    * one crash-stop replica (``<= f``, a non-client pid) — clean,
      byte-identical too (the ``n - f`` quorums never needed pid n);
    * total drop of the writer's outgoing links *without* retransmit —
      ``STALLED`` (the write can never assemble its quorum; reads of
      the initial value still complete);
    * a whole-run 2|2 partition even *with* retransmit — ``STALLED``
      (no side holds ``n - f = 3``; retransmission cannot defeat a
      quorum-starving partition).

    The STALLED cells are ``expect_violation=True``: a stall *is* the
    violation, and its shrunk counterexample persists to ``corpus/``
    like any safety finding.
    """
    lossy = (("drop", 0, 0, 0.25), ("dup", 0, 0, 0.1), ("delay", 0, 0, 0.15, 9))
    writer_cut = (("drop", 1, 0, 1.0),)
    split = (("partition", ((1, 2), (3, 4)), 0, None),)
    for faults, retransmit, expect, consumers in (
        ((), False, False, ("campaign", "smoke", "bench")),
        (lossy, True, False, ("campaign", "smoke", "bench")),
        ((("crash", 4, 0),), False, False, ("campaign", "smoke")),
        (writer_cut, False, True, ("campaign", "smoke")),
        (split, True, True, ("campaign", "smoke")),
    ):
        params = dict(n=4, f=1, seed=0)
        if faults:
            params["faults"] = faults
        if retransmit:
            params["retransmit"] = True
        register(
            ScenarioRecord(
                family="mp_emulation",
                n=4,
                f=1,
                spec=make_scenario("mp_register", **params),
                engine="swarm",
                expect_violation=expect,
                consumers=consumers,
            )
        )


def _register_net() -> None:
    """The live-network runtime's pinned smoke cells (``consumers=net``).

    Three cells, executed by ``python -m repro.analysis net`` on real
    localhost sockets (engine ``live`` — they refuse to build under a
    scheduler):

    * fault-free baseline — every sampled window ``CLEAN``;
    * seeded loss + duplication + reorder delays at the socket layer,
      with the wall-clock retransmit channels — still ``CLEAN`` (the
      reliable-channel assumption rebuilt over a real lossy transport);
    * a whole-run 2|2 partition even with retransmit — pinned
      ``STALLED`` (``expect_violation=True``): neither side holds
      ``n - f = 3``, so writes starve and the wall-clock progress
      monitor converts the hang into the verdict.

    The fault vocabulary and the lossy/split plans deliberately mirror
    ``_register_mp_emulation`` — same plans, virtual time vs wall
    clock, same expected verdicts.
    """
    lossy = (("drop", 0, 0, 0.2), ("dup", 0, 0, 0.1), ("delay", 0, 0, 0.15, 9))
    split = (("partition", ((1, 2), (3, 4)), 0, None),)
    for faults, extra, expect in (
        ((), {}, False),
        (lossy, {"fault_seed": 7}, False),
        (split, {"fault_seed": 3, "window": 1.5, "max_backoff": 0.4}, True),
    ):
        params = dict(
            clients=24, rounds=2, ops_per_client=3, seed=0, **extra
        )
        if faults:
            params["faults"] = faults
        register(
            ScenarioRecord(
                family="net",
                n=4,
                f=1,
                spec=make_scenario("net_cluster", **params),
                engine="live",
                expect_violation=expect,
                consumers=("net",),
            )
        )


def _register_broadcast_systematic() -> None:
    """The deferred broadcast boundary pair under the systematic engine.

    PR 7 brought the broadcast apps into the conformance matrix on the
    swarm engine only: under the sleep-set baseline their bounded
    schedule tree is too large to drain within any campaign budget
    (the n=3 violating cell's tree alone holds >20k sleep-mode runs).
    Source-set DPOR closes that gap — the same trees exhaust in a few
    thousand race-driven runs — so these cells pin
    ``reduction="dpor"`` and carry the same differential expectations
    as their swarm twins: the equivocating sender forks two correct
    receivers at ``n = 3f`` and is harmless at ``n = 3f + 1``.

    Registered last: the matrix order is append-only.
    """
    for family in ("broadcast", "reliable_broadcast"):
        for n, expect in ((4, False), (3, True)):
            register(
                ScenarioRecord(
                    family=family,
                    n=n,
                    f=1,
                    spec=make_scenario(
                        family,
                        n=n,
                        f=1,
                        seed=0,
                        byzantine=((n, "equivocate"),),
                    ),
                    engine="systematic",
                    expect_violation=expect,
                    consumers=("campaign", "explore", "smoke"),
                    reduction="dpor",
                )
            )


_register_alg_families()
_register_baseline_and_strawman()
_register_test_or_set()
_register_extra_grids()
_register_apps()
_register_freshness_boundary()
_register_broadcast_families()
_register_mp_emulation()
_register_net()
_register_broadcast_systematic()
