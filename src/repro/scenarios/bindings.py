"""Oracle bindings: implementation family -> specification, exactly once.

Before the registry existed, the family→oracle mapping lived in two
places that could silently drift apart: ``repro.campaign.matrix``'s
private ``oracle_for`` (family → sequential spec) and
``repro.analysis.workloads.checker_for`` (register kind → checker
pair), with a third copy — the early-exit monitor family — as
``workloads._MONITOR_FAMILY``. This module collapses all three into one
table of :class:`OracleBinding` records; ``oracle_for`` and
``checker_for`` elsewhere are now thin views over it, and the test
suite asserts every registered family has exactly one binding.

The differential shape is preserved: the naive strawman and the
signature baseline are bound to the *same* :class:`VerifiableRegisterSpec`
as Algorithm 1 — they implement the same object, so any observable
divergence is a conformance violation of that implementation, not a
different spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.spec.byzantine import (
    check_authenticated,
    check_sticky,
    check_verifiable,
)
from repro.spec.properties import (
    check_authenticated_properties,
    check_sticky_properties,
    check_verifiable_properties,
)
from repro.spec.sequential import (
    AssetTransferSpec,
    AuthenticatedRegisterSpec,
    BroadcastSpec,
    RegularRegisterSpec,
    SequentialSpec,
    SnapshotSpec,
    StickyRegisterSpec,
    TestOrSetSpec,
    VerifiableRegisterSpec,
)


@dataclass(frozen=True)
class OracleBinding:
    """How one implementation family is judged.

    Attributes:
        family: Implementation family name (the campaign's axis).
        spec_factory: Builds the family's sequential specification;
            called with ``initial=...`` for value-carrying registers.
            Topology-dependent app specs (snapshot, asset transfer) are
            instantiated by the scenario builder with the run's correct
            pids; the factory here is the spec *type* anchor.
        kind: The ``repro.analysis.workloads`` register kind driving
            scenario construction, or ``None`` for families that are
            not register workloads (test_or_set and the apps).
        monitor_family: ``repro.spec.properties.EarlyPropertyMonitor``
            family for early-exit runs, or ``None`` when no incremental
            monitor exists for the oracle.
        checkers: ``(property-checker, byzantine-checker)`` pair for
            register families; ``None`` for families checked purely
            through linearization inside their scenario builder.
    """

    family: str
    spec_factory: Callable[..., SequentialSpec]
    kind: Optional[str] = None
    monitor_family: Optional[str] = None
    checkers: Optional[Tuple[Callable, Callable]] = None


def _value_spec(factory: Callable[..., SequentialSpec]) -> Callable[..., SequentialSpec]:
    def build(initial: Any = 0) -> SequentialSpec:
        return factory(initial=initial)

    return build


_VERIFIABLE_CHECKERS = (check_verifiable_properties, check_verifiable)
_AUTHENTICATED_CHECKERS = (check_authenticated_properties, check_authenticated)
_STICKY_CHECKERS = (check_sticky_properties, check_sticky)

#: The one family→oracle table (see module doc). Registration order is
#: the campaign's canonical family order.
FAMILY_BINDINGS: Dict[str, OracleBinding] = {
    binding.family: binding
    for binding in (
        OracleBinding(
            family="naive",
            spec_factory=_value_spec(VerifiableRegisterSpec),
            kind="naive-quorum",
            monitor_family="verifiable",
            checkers=_VERIFIABLE_CHECKERS,
        ),
        OracleBinding(
            family="sticky",
            spec_factory=lambda initial=0: StickyRegisterSpec(),
            kind="sticky",
            monitor_family="sticky",
            checkers=_STICKY_CHECKERS,
        ),
        OracleBinding(
            family="test_or_set",
            spec_factory=lambda initial=0: TestOrSetSpec(),
            monitor_family="test_or_set",
        ),
        OracleBinding(
            family="authenticated",
            spec_factory=_value_spec(AuthenticatedRegisterSpec),
            kind="authenticated",
            monitor_family="authenticated",
            checkers=_AUTHENTICATED_CHECKERS,
        ),
        OracleBinding(
            family="verifiable",
            spec_factory=_value_spec(VerifiableRegisterSpec),
            kind="verifiable",
            monitor_family="verifiable",
            checkers=_VERIFIABLE_CHECKERS,
        ),
        OracleBinding(
            family="signature_baseline",
            spec_factory=_value_spec(VerifiableRegisterSpec),
            kind="signed",
            monitor_family="verifiable",
            checkers=_VERIFIABLE_CHECKERS,
        ),
        OracleBinding(
            family="snapshot",
            spec_factory=lambda initial=0: SnapshotSpec(),
        ),
        OracleBinding(
            family="asset_transfer",
            spec_factory=lambda initial=0: AssetTransferSpec(),
        ),
        # Both broadcast apps implement the same object — the facade
        # relationship mirrors the strawman/baseline families sharing
        # VerifiableRegisterSpec: one spec, any divergence between the
        # two implementations is a conformance violation.
        OracleBinding(
            family="broadcast",
            spec_factory=lambda initial=0: BroadcastSpec(),
        ),
        OracleBinding(
            family="reliable_broadcast",
            spec_factory=lambda initial=0: BroadcastSpec(),
        ),
        # The message-passing SWMR emulation is judged as the plain
        # register it emulates; the fault plan changes *whether a run
        # completes* (the STALLED liveness verdict), never the spec a
        # completed run must linearize against.
        OracleBinding(
            family="mp_emulation",
            spec_factory=_value_spec(RegularRegisterSpec),
        ),
        # The live-network runtime (repro.net) serves the same emulated
        # registers over real sockets; sampled windows are judged
        # against the same plain-register spec (asset windows build
        # their AssetTransferSpec from the cluster's accounts inside
        # the online oracle).
        OracleBinding(
            family="net",
            spec_factory=_value_spec(RegularRegisterSpec),
        ),
    )
}


def binding_for(family: str) -> OracleBinding:
    """The oracle binding of ``family``; raises for unknown families."""
    binding = FAMILY_BINDINGS.get(family)
    if binding is None:
        raise ConfigurationError(
            f"unknown implementation {family!r}; "
            f"known: {', '.join(FAMILY_BINDINGS)}"
        )
    return binding


def oracle_for(family: str, initial: Any = 0) -> SequentialSpec:
    """The sequential specification ``family``'s runs are judged against."""
    return binding_for(family).spec_factory(initial=initial)


def kind_for(family: str) -> Optional[str]:
    """The register workload kind of ``family`` (None for non-register)."""
    return binding_for(family).kind


def _binding_for_kind(kind: str) -> OracleBinding:
    # kind is None for non-register families (and their bindings carry
    # kind=None too) — that must fall through to the loud error, never
    # match a kind-less app binding.
    if kind is not None:
        for binding in FAMILY_BINDINGS.values():
            if binding.kind == kind:
                return binding
    raise ConfigurationError(f"unknown register kind {kind!r}")


def checker_for_kind(kind: str) -> Tuple[Callable, Callable]:
    """``(property-checker, byzantine-checker)`` for a register kind."""
    binding = _binding_for_kind(kind)
    assert binding.checkers is not None  # register kinds always carry them
    return binding.checkers


def monitor_family_for_kind(kind: str) -> str:
    """The early-exit monitor family judging a register kind."""
    binding = _binding_for_kind(kind)
    assert binding.monitor_family is not None
    return binding.monitor_family


def register_kinds() -> Tuple[str, ...]:
    """Every register workload kind with a binding, in family order."""
    return tuple(
        binding.kind
        for binding in FAMILY_BINDINGS.values()
        if binding.kind is not None
    )
