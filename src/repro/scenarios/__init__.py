"""The unified scenario registry (specs, oracle bindings, records).

One declarative record — topology ``(n, f)``, implementation family,
adversary behaviour, workload/driver program, oracle binding, expected
verdict — fully determines a runnable scenario, and every consumer
derives its view from the same records:

* ``repro.campaign.default_matrix`` is a :func:`grid` query;
* the explorer and fuzzer build runs through the registry's
  :class:`Scenario` specs and builder table;
* ``repro.analysis`` derives its checker/monitor bindings and sweep
  grids from :mod:`repro.scenarios.bindings` /
  :mod:`repro.scenarios.sweeps`, and the bench matrix pulls its
  app-throughput cells from ``grid(consumer="bench")``;
* corpus entries resolve their recorded scenario labels back through
  :func:`resolve_spec` on replay.

Quickstart::

    from repro import scenarios

    for record in scenarios.grid(consumer="campaign"):
        print(record.describe())

    record = scenarios.resolve("snapshot/swarm:snapshot(byzantine=((4, 'deny'),),f=1,n=4,seed=0)")
    built = record.spec.build(my_scheduler)

The CLI front end is ``python -m repro.analysis scenarios --list``.

The default catalog (:mod:`repro.scenarios.catalog`) loads lazily on
the first registry query, so importing this package is cheap and the
builder modules (``repro.explore.scenarios``, ``repro.scenarios.apps``)
can import the registry without a cycle.
"""

from repro.scenarios.bindings import (
    FAMILY_BINDINGS,
    OracleBinding,
    binding_for,
    checker_for_kind,
    kind_for,
    monitor_family_for_kind,
    oracle_for,
    register_kinds,
)
from repro.scenarios.registry import (
    CONSUMERS,
    ENGINES,
    SCENARIO_BUILDERS,
    Scenario,
    ScenarioRecord,
    all_records,
    grid,
    known_scenarios,
    make_scenario,
    register,
    register_builder,
    registered_families,
    resolve,
    resolve_spec,
)
from repro.scenarios.sweeps import EXTRA_SWEEP_ADVERSARIES, SWEEP_ADVERSARIES

__all__ = [
    "CONSUMERS",
    "ENGINES",
    "EXTRA_SWEEP_ADVERSARIES",
    "FAMILY_BINDINGS",
    "OracleBinding",
    "SCENARIO_BUILDERS",
    "SWEEP_ADVERSARIES",
    "Scenario",
    "ScenarioRecord",
    "all_records",
    "binding_for",
    "checker_for_kind",
    "grid",
    "kind_for",
    "known_scenarios",
    "make_scenario",
    "monitor_family_for_kind",
    "oracle_for",
    "register",
    "register_builder",
    "register_kinds",
    "registered_families",
    "resolve",
    "resolve_spec",
]
