"""Explorable scenarios for the message-passing SWMR emulation.

Brings :mod:`repro.mp.swmr_emulation` — the [11]-style quorum emulation
the paper's closing remark relies on — into the conformance matrix,
*with fault injection*: a scenario composes the emulation with a
:class:`repro.faults.FaultPlan` applied through
:class:`repro.faults.FaultyNetwork`, optionally rebuilds reliable
channels with :class:`repro.faults.RetransmitChannels`, and always runs
a :class:`repro.faults.ProgressMonitor` so a run that loses liveness
ends in a first-class ``STALLED`` verdict instead of a burned step
budget.

Verdict shape: a clean run's history (writer ``write``\\ s + reader
``read``\\ s on one emulated register) is judged by linearization
against :class:`repro.spec.RegularRegisterSpec` — over non-overlapping
writes, where the emulation's regular semantics and atomicity coincide,
the writer/reader workload here keeps its own writes sequential.
A stalled run skips the oracle and reports the monitor's diagnosis
(pending operations plus what the plan is suppressing); the reason
string starts with ``STALLED:`` and its digit-masked class is stable
across schedules, so stall verdicts dedupe, shrink, and persist to the
corpus exactly like safety violations.

The pinned matrix cells (see :mod:`repro.scenarios.catalog`):

* reliable baseline — clean;
* fair-lossy + dup + reorder with retransmit channels — clean, with
  verdicts byte-identical to the baseline (the reliable-channel
  assumption, rebuilt);
* one crash-stop replica (``<= f``) — clean, byte-identical too;
* total loss of the writer's outgoing links without retransmit —
  ``STALLED`` (the write can never reach its ``n - f`` quorum);
* a partition window splitting the system 2|2 for the whole run, even
  *with* retransmit — ``STALLED`` (no partition side holds a quorum;
  retransmission cannot defeat a partition).

Engine note: the cells run the swarm engine. Systematic exploration is
*sound* here — the network heap folds into ``System.fingerprint`` — but
the emulation's protocol state (:class:`repro.mp.ReplicaState`, channel
tables) lives in Python objects the coroutine fingerprint abstracts to
type names, so memoization would over-merge; swarm fuzzing does not
fingerprint and is unaffected.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.faults import FaultPlan, FaultyNetwork, ProgressMonitor, RetransmitChannels
from repro.errors import StallDetected
from repro.mp import RandomDelayNetwork, RegisterEmulation
from repro.sim import OpCall, ScriptClient, System
from repro.spec.context import CheckContext
from repro.spec.linearizability import find_linearization
from repro.spec.sequential import RegularRegisterSpec
from repro.scenarios.registry import register_builder


def build_mp_register(
    scheduler: Any,
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    writes: int = 2,
    readers: int = 2,
    reads: int = 2,
    faults: Tuple[Tuple[Any, ...], ...] = (),
    fault_seed: int = 0,
    retransmit: bool = False,
    min_delay: int = 1,
    max_delay: int = 6,
    requery_every: int = 16,
    stall_window: int = 2_500,
    max_steps: int = 150_000,
    max_nodes: int = 2_000_000,
    ctx: Optional[CheckContext] = None,
    early_exit: bool = False,
):
    """A seeded register workload over the mp emulation, under faults.

    Process 1 writes ``writes`` values to one emulated register while
    ``readers`` reader processes (pids ``2..readers+1``) each perform
    ``reads`` reads; every process also runs a replica daemon. The
    ``faults`` tuple is a :class:`repro.faults.FaultPlan` spec applied
    via :class:`FaultyNetwork` over a :class:`RandomDelayNetwork`
    seeded with ``seed``; ``retransmit=True`` frames all protocol
    traffic through :class:`RetransmitChannels`.

    Identical ``(seed, fault_seed)`` pairs under identical schedules
    reproduce identical runs — fault draws are a pure function of the
    submission sequence (``tests/test_faults.py`` pins this end to end).

    ``early_exit`` is accepted and ignored (no incremental monitor
    exists for the register oracle; the stall monitor is always on and
    is itself an early exit for liveness).
    """
    from repro.explore.scenarios import BuiltScenario

    system = System(n=n, f=f, scheduler=scheduler)
    inner = RandomDelayNetwork(seed=seed, min_delay=min_delay, max_delay=max_delay)
    if faults:
        network: Any = FaultyNetwork(inner, FaultPlan.from_spec(faults, seed=fault_seed))
    else:
        network = inner
    system.network = network
    channels = RetransmitChannels(system) if retransmit else None
    emu = RegisterEmulation(system, f=f, channels=channels)
    emu.add_register("r", writer=1, initial=0)
    for pid in system.pids:
        system.spawn(pid, "replica", emu.replica_program(pid))

    rng = random.Random(seed)
    client_rows: List[Tuple[int, ScriptClient, List[OpCall]]] = []

    def spawn_client(pid: int, calls: List[OpCall]) -> None:
        client = ScriptClient(calls, pause_between=rng.randrange(5, 20))
        client_rows.append((pid, client, calls))
        system.spawn(pid, "client", client.program())

    spawn_client(
        1,
        [
            OpCall(
                "r",
                "write",
                (100 + index,),
                lambda index=index: emu.write(1, "r", 100 + index),
            )
            for index in range(writes)
        ],
    )
    for pid in range(2, 2 + readers):
        spawn_client(
            pid,
            [
                OpCall(
                    "r",
                    "read",
                    (),
                    lambda pid=pid: emu.read(pid, "r", requery_every=requery_every),
                )
                for _ in range(reads)
            ],
        )

    def describe_pending() -> str:
        parts = []
        for pid, client, calls in client_rows:
            if client.done:
                continue
            index = len(client.results)
            op = calls[index].op if index < len(calls) else "?"
            parts.append(f"p{pid} {op}#{index + 1}/{len(calls)}")
        return ", ".join(parts) if parts else "none"

    monitor = ProgressMonitor(
        system,
        signals=lambda: (
            network.delivered,
            system.metrics.responses,
            emu.progress_version(),
        ),
        window=stall_window,
        describe_pending=describe_pending,
        network=network if network is not inner else None,
        channels=channels,
    )
    stall: Dict[str, str] = {}

    def goal() -> bool:
        if all(client.done for _pid, client, _calls in client_rows):
            return True
        monitor.observe()
        return False

    def drive() -> None:
        try:
            system.run_until(goal, max_steps, label="mp register clients")
        except StallDetected as exc:
            # The run *completed* (its trace replays and shrinks); the
            # stall is the verdict, reported by check() below.
            stall["reason"] = exc.reason

    spec = RegularRegisterSpec(initial=0)

    def check() -> Optional[str]:
        if "reason" in stall:
            return stall["reason"]
        records = system.history.operations(obj="r")
        result = find_linearization(records, spec, max_nodes=max_nodes, ctx=ctx)
        if result.ok:
            return None
        return f"mp emulation linearizability: {result.reason}"

    return BuiltScenario(system=system, drive=drive, check=check)


register_builder("mp_register", build_mp_register)
