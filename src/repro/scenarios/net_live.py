"""Live-network scenarios: registry records executed on wall clocks.

The ``net`` family's records pin the live runtime's smoke cells — the
same declarative :class:`~repro.scenarios.registry.ScenarioRecord`
shape as every virtual-time cell, with ``engine="live"`` and a
:class:`repro.net.LiveProfile`'s knobs as spec params. Pinning them in
the registry buys the usual guarantees: stable labels for CI and
reports, an explicit expected verdict per cell, and membership in the
``scenarios --list`` inventory.

What a live record can *not* do is build under a scheduler: wall-clock
runs have no deterministic schedule space, so the registered builder
refuses loudly and points at the CLI (``python -m repro.analysis net
--cell <label>``), which resolves the record into a profile via
:func:`profile_for_record` and executes it with ``repro.net``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.net.cluster import LiveProfile
from repro.scenarios.registry import ScenarioRecord, register_builder


def build_net_cluster(scheduler: Any, ctx: Any = None, early_exit: bool = False, **params: Any):
    """Refuse: live cells execute on wall clocks, not under a scheduler."""
    raise ConfigurationError(
        "net_cluster scenarios run on the wall-clock socket runtime, not "
        "under a virtual-time scheduler; execute them with "
        "`python -m repro.analysis net --cell <label>`"
    )


def profile_for_record(record: ScenarioRecord) -> LiveProfile:
    """The :class:`LiveProfile` a live registry record pins.

    The record's topology provides ``n``/``f``, its label becomes the
    profile (and evidence) label, and every spec param maps one-to-one
    onto a profile field — unknown params fail loudly in the profile
    constructor rather than being dropped.
    """
    if record.engine != "live":
        raise ConfigurationError(
            f"record {record.label()!r} has engine {record.engine!r}, not 'live'"
        )
    params = dict(record.spec.params)
    try:
        return LiveProfile(
            n=record.n, f=record.f, label=record.label(), **params
        )
    except TypeError as exc:
        raise ConfigurationError(
            f"record {record.label()!r} carries a non-profile param: {exc}"
        )


register_builder("net_cluster", build_net_cluster)
