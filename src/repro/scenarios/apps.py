"""Explorable scenarios for the paper-level applications (repro.apps).

These builders bring the Section 1/8 applications — the Byzantine atomic
snapshot, the asset-transfer object, and the two broadcast objects
(non-equivocating and reliable) — into the same conformance matrix as
the registers: one picklable spec per scenario, driven by any
exploration scheduler, judged against a *sequential specification*
through the shared Wing–Gong linearizability search and
:class:`repro.spec.CheckContext` caches.

Oracle shape (see :class:`repro.spec.SnapshotSpec` /
:class:`repro.spec.AssetTransferSpec` /
:class:`repro.spec.BroadcastSpec`): the history is restricted to the
correct processes and then rewritten so the spec can replay it —

* ``update``/``transfer``/``broadcast`` records gain the acting pid as
  their first spec argument (a sequential snapshot/transfer/broadcast
  transition depends on who acts);
* snapshot ``scan`` results are *projected* onto the correct segments
  (a Byzantine process's own segment is unconstrained by the paper's
  Byzantine linearizability, so the spec never has to explain it);
* asset-transfer histories are judged over *all* accounts: the
  Byzantine accounts' settled outgoing payments are *synthesized* from
  the final witness state of their log registers (the Byzantine-
  linearizability move of ``repro.spec.byzantine``, specialized to
  fork-free sticky logs), so a consistent Byzantine credit is
  explainable while a forked log — two auditors crediting different
  payments — is not;
* broadcast histories are judged over *all* senders the same way: at
  most one whole-run ``broadcast`` is synthesized per Byzantine
  (sender, slot) whose sticky register settled (``f + 1`` correct
  witnesses of one message — exactly the evidence a correct Read
  collects before delivering), so a consistently delivered Byzantine
  message is explainable while a *forked* slot — two correct receivers
  delivering different messages — is not.

Early exit: no incremental monitor exists for the app oracles, so the
``early_exit`` flag is accepted and ignored — runs are judged at full
horizon, which trivially preserves verdicts.

Topology note: at ``n = 3f + 1`` all applications must be clean under
every behaviour here (the paper's n > 3f translations). At ``n = 3f``
the equivocating-owner/sender attack forks a sticky register and two
correct processes settle different values — the asset-transfer double
spend and the broadcast integrity break the violating campaign cells
pin. The snapshot cells pin clean at both boundaries under the
reader-side behaviours *and* under ``byzantine_updater`` now that
embedded-scan adoption is freshness-checked; the pre-fix hole stays
measured through the ``verify_freshness=False`` cell and its corpus
entry (see ``repro.scenarios.catalog``).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.adversary import behaviors
from repro.apps import (
    EMPTY_SEGMENT,
    AssetTransfer,
    AtomicSnapshot,
    NonEquivocatingBroadcast,
    ReliableBroadcast,
)
from repro.core.sticky import StickyRegister
from repro.errors import ConfigurationError
from repro.sim import OpCall, ScriptClient, System
from repro.sim.effects import ReadRegister, WriteRegister
from repro.sim.history import OperationRecord
from repro.sim.process import pause_steps
from repro.sim.values import BOTTOM, freeze, is_bottom
from repro.spec.context import CheckContext
from repro.spec.linearizability import find_linearization
from repro.spec.sequential import (
    AssetTransferSpec,
    BroadcastSpec,
    SnapshotSpec,
)
from repro.scenarios.registry import register_builder

#: Byzantine behaviours an app scenario may assign (pid -> name pairs).
APP_ADVERSARIES = (
    "garbage",
    "silent",
    "stonewall",
    "deny",
    "equivocate",
    "byzantine_updater",
)

#: Amount every equivocating transfer moves (small enough to always be
#: solvent against the default initial balance).
EQUIVOCATION_AMOUNT = 50


def _backing_registers(app: Any) -> List[Any]:
    """Every SWMR register object backing an app instance, sorted by name."""
    if isinstance(app, AtomicSnapshot):
        registers = [app.segment(pid) for pid in sorted(app.system.pids)]
    elif isinstance(app, AssetTransfer):
        registers = [
            app.slot_register(owner, index)
            for owner in sorted(app.system.pids)
            for index in range(app.slots)
        ]
    elif isinstance(app, (NonEquivocatingBroadcast, ReliableBroadcast)):
        registers = [
            app.register_for(sender, slot)
            for sender in sorted(app.system.pids)
            for slot in range(app.slots)
        ]
    else:
        raise ConfigurationError(f"no backing-register map for {app!r}")
    return registers


def _app_stonewaller(app: Any, pid: int) -> Any:
    """Answer every asker of every backing register with "nothing".

    The app-level analogue of
    :func:`repro.adversary.behaviors.stonewalling_witness`: for each
    backing register the pid helps (but does not own), it serves every
    asker round with the empty witness report — ``⊥`` for sticky logs,
    the empty set for authenticated segments. Measured result: a
    register with a *correct* owner survives this even at ``n = 3f``,
    because the owner's and the reader's own helpers already form the
    needed quorum — which is exactly why the campaign's snapshot cells
    pin clean at both boundaries.
    """
    registers = [
        register
        for register in _backing_registers(app)
        if register.writer != pid
    ]

    def program() -> Any:
        while True:
            for register in registers:
                empty: Any = (
                    BOTTOM
                    if isinstance(register, StickyRegister)
                    else frozenset()
                )
                for k in register.readers:
                    if k == pid:
                        continue
                    counter_raw = yield ReadRegister(register.reg_counter(k))
                    counter = counter_raw if isinstance(counter_raw, int) else 0
                    yield WriteRegister(
                        register.reg_reply(pid, k), (empty, counter)
                    )
            yield from pause_steps(1)

    return program()


def _app_denier(app: Any, pid: int) -> Any:
    """Witness-then-deny: speed writes to completion, starve the readers.

    The app-level composition of the Theorem 29 "raise the witness,
    then act as if you never stepped" move and the E12 staging: for
    every backing register the pid helps, it *eagerly* copies the
    owner's current value into its own echo/witness registers — so
    writes reach their ``n - f`` witness quorum with the Byzantine
    process as a member — while answering every asker round with the
    empty report. The aim is a write whose quorum is
    ``{owner, Byzantine}`` followed by a read that collects ``f + 1``
    "nothing" reports (Obs 22's validity break). Measured result: the
    helpers' self-echo closes the window — a correct helper that serves
    an asker has already run its echo/witness duties in the same
    iteration — so correct-owner registers survive this behaviour even
    at ``n = 3f``; it stays in the catalogue as the strongest honest
    reader-side attack (the snapshot cells pin clean under it).
    """
    from repro.core.authenticated import well_formed_tuples

    registers = [
        register
        for register in _backing_registers(app)
        if register.writer != pid
    ]

    def program() -> Any:
        while True:
            for register in registers:
                if isinstance(register, StickyRegister):
                    value = yield ReadRegister(register.reg_echo(register.writer))
                    if not is_bottom(value):
                        yield WriteRegister(register.reg_echo(pid), value)
                        yield WriteRegister(register.reg_witness(pid), value)
                    empty: Any = BOTTOM
                else:
                    raw = yield ReadRegister(
                        register.reg_witness(register.writer)
                    )
                    values = frozenset(
                        value for _ts, value in well_formed_tuples(raw)
                    )
                    yield WriteRegister(
                        register.reg_witness(pid),
                        values | {register.initial},
                    )
                    empty = frozenset()
                for k in register.readers:
                    if k == pid:
                        continue
                    counter_raw = yield ReadRegister(register.reg_counter(k))
                    counter = counter_raw if isinstance(counter_raw, int) else 0
                    yield WriteRegister(
                        register.reg_reply(pid, k), (empty, counter)
                    )
            yield from pause_steps(1)

    return program()


def _app_equivocator(app: Any, pid: int) -> Any:
    """Fork the owner's first sticky slot between two values (Obs 24).

    The equivocation attack of the paper's application sections,
    instantiated per app: for **asset transfer** the Byzantine account
    owner forks its slot-0 log between ``pay a`` and ``pay b`` (both
    correct payees) — the double spend; for the **broadcast** objects
    the Byzantine *sender* forks its slot-0 message register between two
    messages — the integrity/non-equivocation break. The sticky-register
    mechanics are identical (see :func:`_sticky_fork_equivocator`): at
    ``n = 3f + 1`` at most one fork is ever witnessable and the cells
    pin clean; at ``n = 3f`` two correct processes settle *different*
    forks — the violating cells.
    """
    if isinstance(app, AssetTransfer):
        register = app.slot_register(pid, 0)
        payees = sorted(p for p in app.system.pids if p != pid)[:2]
        if len(payees) < 2:
            raise ConfigurationError(
                "equivocation needs two candidate payees"
            )
        forks = (
            freeze((payees[0], EQUIVOCATION_AMOUNT)),
            freeze((payees[1], EQUIVOCATION_AMOUNT)),
        )
    elif isinstance(app, (NonEquivocatingBroadcast, ReliableBroadcast)):
        register = app.register_for(pid, 0)
        forks = (freeze(f"fork-a@{pid}"), freeze(f"fork-b@{pid}"))
    else:
        raise ConfigurationError(
            "the equivocate behaviour targets sticky-backed apps "
            "(asset transfer, broadcast)"
        )
    return _sticky_fork_equivocator(register, pid, forks)


def _sticky_fork_equivocator(
    register: StickyRegister, pid: int, forks: Tuple[Any, Any]
) -> Any:
    """Flip-flop + mirror-serve a sticky register between two forks.

    The Byzantine owner flip-flops its echo register between the two
    fork values and — acting as its own register's only
    truthful-looking witness — *mirrors* each asker's own echo back at
    it, so a reader that echoed fork ``a`` collects matching ``a``
    reports and one that echoed ``b`` collects ``b``. At ``n = 3f + 1``
    the ``n - f``-echo witness rule lets at most one fork ever be
    witnessed, so every correct read agrees. At ``n = 3f`` the rule
    degrades to "the owner's echo plus one correct echo", both forks
    are witnessable, and two correct readers settle different forks.
    """
    helpers = [k for k in register.readers if k != pid]

    def program() -> Any:
        # Phase 1 — blind churn, one flip per step: which fork a correct
        # helper's (sticky) echo commits to is decided by the scheduler,
        # not by arrival order. 64 flips comfortably cover every
        # helper's first echo under the exploration schedulers.
        side = 0
        for _ in range(64):
            yield WriteRegister(register.reg_echo(pid), forks[side])
            side = 1 - side
        # Phase 2 — mirror-serve, still flipping: each asker is answered
        # with its *own* echo, so a reader's matching-report quorum
        # closes around its side of the fork (at n = 3f) instead of
        # stalling; the continued flips let each side's helper meet the
        # echo-witness rule for its own fork, which keeps reads live
        # (and at n = 3f + 1 can never push the minority fork to the
        # n - f echo quorum).
        while True:
            yield WriteRegister(register.reg_echo(pid), forks[side])
            side = 1 - side
            for k in helpers:
                counter_raw = yield ReadRegister(register.reg_counter(k))
                counter = counter_raw if isinstance(counter_raw, int) else 0
                echoed = yield ReadRegister(register.reg_echo(k))
                yield WriteRegister(
                    register.reg_reply(pid, k),
                    (echoed if not is_bottom(echoed) else BOTTOM, counter),
                )

    return program()


def _app_byzantine_updater(app: Any, pid: int, churn: int = 12) -> Any:
    """Churn authentic-but-stale updates (the embedded-scan freshness hole).

    The strongest Byzantine *updater* against the snapshot: the process
    runs the **genuine write protocol** on its own segment — every value
    it serves is well-formed and authentic, so component verification
    can never expose it — but each update embeds the *all-initial* scan
    (every component ``EMPTY_SEGMENT``, which "always verifies"). The
    churn breaks direct double collects and forces scanners onto the
    embedded-scan adoption path, where pre-fix they adopted the initial
    view regardless of their own completed updates — a snapshot
    linearizability violation at *any* ``n``. Post-fix the seq watermark
    rejects the stale embedded scan (the scanner has already observed
    fresher seqs directly), the churner joins the blacklist, and the
    scan completes as a direct scan over the remaining segments — the
    cells pin clean at both boundaries.

    ``churn`` bounds the number of stale updates (two observed moves per
    scan already trigger adoption; twelve genuine protocol writes,
    paced ~200 steps apart so they overlap the clients' late scans,
    cover every scan in the workload several times over). The
    *endless*-churn liveness question — can a relentless mover starve
    scans — is the blacklisting unit tests' job, not this cell's: an
    unbounded genuine write loop only multiplies the run's step count
    without adding adoption opportunities.
    """
    if not isinstance(app, AtomicSnapshot):
        raise ConfigurationError(
            "the byzantine_updater behaviour targets the atomic snapshot"
        )
    register = app.segment(pid)
    stale_view = freeze(
        tuple(EMPTY_SEGMENT for _ in sorted(app.system.pids))
    )

    def program() -> Any:
        for seq in range(1, churn + 1):
            payload = freeze((seq, f"stale@{pid}.{seq}", stale_view))
            yield from register.procedure_write(pid, payload)
            yield from pause_steps(200)
        while True:  # spent: stay schedulable but harmless
            yield from pause_steps(16)

    return program()


def _app_adversary(name: str, app: Any, pid: int, seed: int) -> Any:
    """Instantiate one Byzantine behaviour against an app instance.

    ``garbage`` sprays malformed values over *every* register the pid
    may legally write under the app — its own segment/log slots and its
    reply channels in everyone else's backing registers, so it attacks
    both the data and the witness protocol. ``silent`` never steps.
    ``stonewall`` serves every witness query with the empty report (see
    :func:`_app_stonewaller`); ``deny`` additionally joins the write
    quorums first (see :func:`_app_denier`); ``equivocate`` forks the
    owner's own sticky slot — transfer log or broadcast message (see
    :func:`_app_equivocator`); ``byzantine_updater`` churns genuine
    snapshot updates carrying stale embedded scans (see
    :func:`_app_byzantine_updater`).
    """
    if name == "garbage":
        return behaviors.garbage_spammer(
            behaviors.owned_register_names(app, pid), period=5, seed=seed
        )
    if name == "silent":
        return behaviors.silent()
    if name == "stonewall":
        return _app_stonewaller(app, pid)
    if name == "deny":
        return _app_denier(app, pid)
    if name == "equivocate":
        return _app_equivocator(app, pid)
    if name == "byzantine_updater":
        return _app_byzantine_updater(app, pid)
    raise ConfigurationError(
        f"unknown app adversary {name!r}; known: {', '.join(APP_ADVERSARIES)}"
    )


def _declare_byzantine(
    system: System, byzantine: Sequence[Tuple[int, str]]
) -> Dict[int, str]:
    """Validate and declare the Byzantine cast; returns pid -> behaviour."""
    cast = dict(byzantine)
    if len(cast) != len(tuple(byzantine)):
        raise ConfigurationError(f"duplicate Byzantine pid in {byzantine!r}")
    for pid in cast:
        if pid not in system.pids:
            raise ConfigurationError(f"Byzantine pid {pid} not in system")
    if cast:
        system.declare_byzantine(*cast)
    return cast


def _correct_indexes(system: System) -> Tuple[List[int], List[int]]:
    """(sorted correct pids, their indexes among all sorted pids)."""
    owners = sorted(system.pids)
    correct = sorted(system.correct)
    return correct, [owners.index(pid) for pid in correct]


# ----------------------------------------------------------------------
# Atomic snapshot
# ----------------------------------------------------------------------
def build_snapshot(
    scheduler: Any,
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    byzantine: Tuple[Tuple[int, str], ...] = (),
    updates: int = 2,
    verify_freshness: bool = True,
    max_steps: int = 6_000_000,
    max_nodes: int = 2_000_000,
    ctx: Optional[CheckContext] = None,
    early_exit: bool = False,
):
    """A seeded snapshot workload: concurrent updates and scans.

    Every correct process interleaves ``updates`` updates with scans
    (values are pid-tagged so provenance is checkable); Byzantine pids
    run the named :data:`APP_ADVERSARIES` behaviour. The check rewrites
    the correct-restricted ``snap`` history (see module doc) and asks
    for a linearization against :class:`SnapshotSpec` over the correct
    pids.

    ``verify_freshness=False`` rebuilds the pre-fix snapshot (no seq
    watermark on adopted embedded scans) so the ``byzantine_updater``
    counterexample stays replayable; the corpus entry and one VIOLATING
    campaign cell record that configuration explicitly, and because
    scenario labels only include parameters actually passed, every
    pre-existing label is untouched.
    """
    from repro.explore.scenarios import BuiltScenario

    system = System(n=n, f=f, scheduler=scheduler)
    snap = AtomicSnapshot(
        system, "snap", f=f, verify_freshness=verify_freshness
    ).install()
    cast = _declare_byzantine(system, byzantine)
    snap.start_helpers(sorted(system.correct))
    for pid, name in sorted(cast.items()):
        system.spawn(pid, "adv", _app_adversary(name, snap, pid, seed))

    rng = random.Random(seed)
    clients: List[ScriptClient] = []
    for pid in sorted(system.correct):
        calls: List[OpCall] = []
        for round_index in range(updates):
            value = pid * 100 + round_index
            calls.append(
                OpCall(
                    "snap",
                    "update",
                    (value,),
                    lambda pid=pid, value=value: snap.procedure_update(
                        pid, value
                    ),
                )
            )
            calls.append(
                OpCall(
                    "snap",
                    "scan",
                    (),
                    lambda pid=pid: snap.procedure_scan(pid),
                )
            )
        client = ScriptClient(calls, pause_between=rng.randrange(5, 20))
        clients.append(client)
        system.spawn(pid, "client", client.program())

    def drive() -> None:
        system.run_until(
            lambda: all(client.done for client in clients),
            max_steps,
            label="snapshot clients",
        )

    correct, indexes = _correct_indexes(system)
    spec = SnapshotSpec(pids=tuple(correct))

    def check() -> Optional[str]:
        records = []
        for record in system.history.restrict(correct).operations(obj="snap"):
            if record.op == "update":
                record = replace(record, args=(record.pid,) + record.args)
            elif record.op == "scan" and record.complete:
                view = record.result
                if not isinstance(view, tuple) or len(view) != n:
                    return (
                        f"snapshot scan by p{record.pid} returned a "
                        f"malformed view: {view!r}"
                    )
                record = replace(
                    record, result=tuple(view[index] for index in indexes)
                )
            records.append(record)
        result = find_linearization(records, spec, max_nodes=max_nodes, ctx=ctx)
        if result.ok:
            return None
        return f"snapshot linearizability: {result.reason}"

    return BuiltScenario(system=system, drive=drive, check=check)


# ----------------------------------------------------------------------
# Asset transfer
# ----------------------------------------------------------------------
def build_asset_transfer(
    scheduler: Any,
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    byzantine: Tuple[Tuple[int, str], ...] = (),
    transfers: int = 2,
    initial_balance: int = 100,
    max_steps: int = 6_000_000,
    max_nodes: int = 2_000_000,
    ctx: Optional[CheckContext] = None,
    early_exit: bool = False,
):
    """A seeded asset-transfer workload: payments plus balance audits.

    Every correct owner issues ``transfers`` seeded transfers to other
    correct accounts, then audits balances (its own, one peer's, and —
    when a Byzantine cast exists — one Byzantine account) — the audit
    following the transfer *sequentially* in the same client is what
    gives the spec real-time precedence to bite on: a balance that
    misses the client's own completed debit can never linearize.

    The oracle is Byzantine linearizability against
    :class:`AssetTransferSpec` over *all* accounts: the correct
    processes' recorded operations are rewritten (transfer records gain
    the acting pid), and the Byzantine accounts' *settled* outgoing
    transfers are synthesized from the final witness state of their log
    registers (a slot counts when ``f + 1`` correct helpers witnessed
    the same well-formed payment — exactly the evidence any correct
    read needs before crediting it). Synthesized transfers span the
    whole run, so the search may linearize them anywhere — the most
    permissive sound placement. A forked log (no payment reaching
    ``f + 1`` correct witnesses while readers already credited both
    sides) therefore has unexplainable credits and fails to linearize,
    which is the ``n = 3f`` double-spend the violating cell pins.
    """
    from repro.explore.scenarios import BuiltScenario
    from repro.apps.asset_transfer import well_formed_transfer
    from repro.spec.byzantine import fresh_op_ids

    system = System(n=n, f=f, scheduler=scheduler)
    assets = AssetTransfer(
        system,
        "assets",
        initial_balances={pid: initial_balance for pid in system.pids},
        slots=max(transfers, 1),
        f=f,
    ).install()
    cast = _declare_byzantine(system, byzantine)
    assets.start_helpers(sorted(system.correct))
    for pid, name in sorted(cast.items()):
        system.spawn(pid, "adv", _app_adversary(name, assets, pid, seed))

    rng = random.Random(seed)
    correct, _indexes = _correct_indexes(system)
    clients: List[ScriptClient] = []
    for pid in correct:
        peers = [other for other in correct if other != pid]
        calls: List[OpCall] = []
        for _ in range(transfers):
            to = rng.choice(peers)
            amount = rng.randrange(5, 30)
            calls.append(
                OpCall(
                    "assets",
                    "transfer",
                    (to, amount),
                    lambda pid=pid, to=to, amount=amount: (
                        assets.procedure_transfer(pid, to, amount)
                    ),
                )
            )
        audits = [pid, rng.choice(peers)]
        if cast:
            audits.append(rng.choice(sorted(cast)))
        for account in audits:
            calls.append(
                OpCall(
                    "assets",
                    "balance",
                    (account,),
                    lambda pid=pid, account=account: (
                        assets.procedure_balance(pid, account)
                    ),
                )
            )
        client = ScriptClient(calls, pause_between=rng.randrange(5, 20))
        clients.append(client)
        system.spawn(pid, "client", client.program())

    def drive() -> None:
        system.run_until(
            lambda: all(client.done for client in clients),
            max_steps,
            label="asset-transfer clients",
        )

    accounts = tuple(sorted(system.pids))
    spec = AssetTransferSpec(
        accounts=accounts,
        initial=tuple(initial_balance for _ in accounts),
    )

    def settled_byzantine_transfers() -> List[Tuple[int, int, int]]:
        """(owner, to, amount) per settled Byzantine log slot, in order."""
        settled: List[Tuple[int, int, int]] = []
        for owner in sorted(cast):
            for index in range(assets.slots):
                register = assets.slot_register(owner, index)
                counts: Dict[Any, int] = {}
                for i in correct:
                    witnessed = system.registers.peek(register.reg_witness(i))
                    if not is_bottom(witnessed):
                        counts[witnessed] = counts.get(witnessed, 0) + 1
                value = next(
                    (v for v, c in counts.items() if c >= assets.f + 1), None
                )
                parsed = (
                    None
                    if value is None
                    else well_formed_transfer(value, system.pids)
                )
                if parsed is None:
                    break  # the usable prefix of this log ends here
                settled.append((owner, parsed[0], parsed[1]))
        return settled

    def check() -> Optional[str]:
        restricted = system.history.restrict(correct)
        synthesized: List[OperationRecord] = []
        settled = settled_byzantine_transfers()
        horizon = system.clock + 1
        for op_id, (owner, to, amount) in zip(
            fresh_op_ids(system.history, len(settled) + 1), settled
        ):
            synthesized.append(
                OperationRecord(
                    op_id=op_id,
                    pid=owner,
                    obj="assets",
                    op="transfer",
                    args=(owner, to, amount),
                    invoked_at=-1,
                    responded_at=horizon,
                    result="ok",
                )
            )
        synthetic_ids = {record.op_id for record in synthesized}
        if synthesized:
            restricted = restricted.with_synthetic(synthesized)
        records: List[OperationRecord] = []
        for record in restricted.operations(obj="assets"):
            if record.op == "transfer" and record.op_id not in synthetic_ids:
                record = replace(record, args=(record.pid,) + record.args)
            records.append(record)
        result = find_linearization(records, spec, max_nodes=max_nodes, ctx=ctx)
        if result.ok:
            return None
        return f"asset-transfer linearizability: {result.reason}"

    return BuiltScenario(system=system, drive=drive, check=check)


# ----------------------------------------------------------------------
# Broadcast (non-equivocating and reliable)
# ----------------------------------------------------------------------
def _build_broadcast_scenario(
    app_factory: Any,
    obj: str,
    scheduler: Any,
    n: int,
    f: int,
    seed: int,
    byzantine: Tuple[Tuple[int, str], ...],
    slots: int,
    max_steps: int,
    max_nodes: int,
    ctx: Optional[CheckContext],
):
    """Shared broadcast workload: every sender broadcasts, all deliver.

    Every correct process broadcasts one message per slot it owns, then
    delivers every *other* sender's slots — the delivery following the
    broadcast sequentially in the same client gives the spec real-time
    precedence to bite on — and probes each Byzantine sender's slot 0 a
    second time (the totality/relay check: once a delivery returned
    ``m``, a later ``⊥`` or different message cannot linearize).

    The oracle is Byzantine linearizability against
    :class:`BroadcastSpec` over *all* senders, with at most one
    synthesized whole-run ``broadcast`` per settled Byzantine slot (the
    ``f + 1``-correct-witness rule; see module doc).
    """
    from repro.explore.scenarios import BuiltScenario
    from repro.spec.byzantine import fresh_op_ids

    system = System(n=n, f=f, scheduler=scheduler)
    app = app_factory(system, f=f, slots=slots).install()
    cast = _declare_byzantine(system, byzantine)
    app.start_helpers(sorted(system.correct))
    for pid, name in sorted(cast.items()):
        system.spawn(pid, "adv", _app_adversary(name, app, pid, seed))

    rng = random.Random(seed)
    correct, _indexes = _correct_indexes(system)
    clients: List[ScriptClient] = []
    for pid in correct:
        calls: List[OpCall] = []
        for slot in range(slots):
            message = f"m{pid}.{slot}"
            calls.append(
                OpCall(
                    obj,
                    "broadcast",
                    (slot, message),
                    lambda pid=pid, slot=slot, message=message: (
                        app.procedure_broadcast(pid, slot, message)
                    ),
                )
            )
        senders = [s for s in sorted(system.pids) if s != pid]
        probes = [(s, slot) for s in senders for slot in range(slots)]
        probes += [(s, 0) for s in sorted(cast)]  # totality re-read
        for sender, slot in probes:
            calls.append(
                OpCall(
                    obj,
                    "deliver",
                    (sender, slot),
                    lambda pid=pid, sender=sender, slot=slot: (
                        app.procedure_deliver(pid, sender, slot)
                    ),
                )
            )
        client = ScriptClient(calls, pause_between=rng.randrange(5, 20))
        clients.append(client)
        system.spawn(pid, "client", client.program())

    def drive() -> None:
        system.run_until(
            lambda: all(client.done for client in clients),
            max_steps,
            label=f"{obj} clients",
        )

    spec = BroadcastSpec(senders=tuple(sorted(system.pids)), slots=slots)

    def settled_byzantine_broadcasts() -> List[Tuple[int, int, Any]]:
        """(sender, slot, message) per settled Byzantine slot."""
        settled: List[Tuple[int, int, Any]] = []
        for sender in sorted(cast):
            for slot in range(slots):
                register = app.register_for(sender, slot)
                counts: Dict[Any, int] = {}
                for i in correct:
                    witnessed = system.registers.peek(register.reg_witness(i))
                    if not is_bottom(witnessed):
                        counts[witnessed] = counts.get(witnessed, 0) + 1
                value = next(
                    (v for v, c in counts.items() if c >= app.f + 1), None
                )
                if value is not None:
                    settled.append((sender, slot, value))
        return settled

    def check() -> Optional[str]:
        restricted = system.history.restrict(correct)
        synthesized: List[OperationRecord] = []
        settled = settled_byzantine_broadcasts()
        horizon = system.clock + 1
        for op_id, (sender, slot, message) in zip(
            fresh_op_ids(system.history, len(settled) + 1), settled
        ):
            synthesized.append(
                OperationRecord(
                    op_id=op_id,
                    pid=sender,
                    obj=obj,
                    op="broadcast",
                    args=(sender, slot, message),
                    invoked_at=-1,
                    responded_at=horizon,
                    result="done",
                )
            )
        synthetic_ids = {record.op_id for record in synthesized}
        if synthesized:
            restricted = restricted.with_synthetic(synthesized)
        records: List[OperationRecord] = []
        for record in restricted.operations(obj=obj):
            if record.op == "broadcast" and record.op_id not in synthetic_ids:
                record = replace(record, args=(record.pid,) + record.args)
            records.append(record)
        result = find_linearization(records, spec, max_nodes=max_nodes, ctx=ctx)
        if result.ok:
            return None
        return f"{obj} linearizability: {result.reason}"

    return BuiltScenario(system=system, drive=drive, check=check)


def build_broadcast(
    scheduler: Any,
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    byzantine: Tuple[Tuple[int, str], ...] = (),
    slots: int = 1,
    max_steps: int = 6_000_000,
    max_nodes: int = 2_000_000,
    ctx: Optional[CheckContext] = None,
    early_exit: bool = False,
):
    """Non-equivocating broadcast (Section 8's sticky-register sketch)."""
    return _build_broadcast_scenario(
        lambda system, f, slots: NonEquivocatingBroadcast(
            system, "bcast", slots=slots, f=f
        ),
        "bcast",
        scheduler,
        n,
        f,
        seed,
        byzantine,
        slots,
        max_steps,
        max_nodes,
        ctx,
    )


def build_reliable_broadcast(
    scheduler: Any,
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    byzantine: Tuple[Tuple[int, str], ...] = (),
    slots: int = 1,
    max_steps: int = 6_000_000,
    max_nodes: int = 2_000_000,
    ctx: Optional[CheckContext] = None,
    early_exit: bool = False,
):
    """The signature-free reliable broadcast facade (same slot machinery,
    the object vocabulary of [5]) — judged against the same
    :class:`BroadcastSpec`, so any divergence between the two apps is a
    conformance violation, not a spec difference."""
    return _build_broadcast_scenario(
        lambda system, f, slots: ReliableBroadcast(
            system, "rbc", slots=slots, f=f
        ),
        "rbc",
        scheduler,
        n,
        f,
        seed,
        byzantine,
        slots,
        max_steps,
        max_nodes,
        ctx,
    )


register_builder("snapshot", build_snapshot)
register_builder("asset_transfer", build_asset_transfer)
register_builder("broadcast", build_broadcast)
register_builder("reliable_broadcast", build_reliable_broadcast)
