"""Message-passing substrate: network, register emulation, ST87 broadcast.

Realizes the paper's closing observation: everything it builds from
SWMR registers also exists over message passing with ``n > 3f``.
"""

from repro.mp.adapter import (
    declare_registers,
    translate,
    translated_help,
    translated_op,
)
from repro.mp.authenticated_broadcast import AuthenticatedBroadcast
from repro.mp.network import Network, RandomDelayNetwork, ScriptedNetwork
from repro.mp.swmr_emulation import (
    EmulatedRegisterSpec,
    RegisterEmulation,
    ReplicaState,
)

__all__ = [
    "AuthenticatedBroadcast",
    "EmulatedRegisterSpec",
    "Network",
    "RandomDelayNetwork",
    "RegisterEmulation",
    "ReplicaState",
    "ScriptedNetwork",
    "declare_registers",
    "translate",
    "translated_help",
    "translated_op",
]
