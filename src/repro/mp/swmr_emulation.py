"""SWMR register emulation over message passing, n > 3f, no signatures.

The paper closes by noting that its registers also exist in
message-passing systems with ``n > 3f``, because SWMR registers can be
emulated there without signatures (Mostéfaoui, Petrolia, Raynal & Jard
[11]). This module provides such an emulation over the ``repro.mp``
network so experiment E9 can run Algorithm 1 end-to-end on top of
messages.

Protocol (echo-amplified quorum replication, in the spirit of [11]):

* Every process acts as a *replica* holding the highest timestamped
  ``(seq, value)`` pair it has accepted for each emulated register.
* ``write(v)``: the writer increments its sequence number, broadcasts
  ``WRITE(reg, seq, v)``, and waits for ``n - f`` ``ACK``\\ s.
* Replicas accept a WRITE only from the register's true writer (channels
  are authenticated), adopt it if newer, **echo** it to all replicas,
  and also adopt pairs confirmed by ``f + 1`` matching echoes — so every
  correct replica eventually converges even if the writer's own sends
  race with reads.
* ``read()``: the reader broadcasts ``READ(reg, rid)`` and collects
  ``VALUE(reg, rid, seq, v)`` replies. It returns ``v`` once some pair
  ``(seq, v)`` is *confirmed* — reported identically by ``f + 1``
  distinct replicas (at least one correct) — choosing the confirmed pair
  with the highest ``seq``. It re-broadcasts the query until confirmation
  arrives.

Mailbox discipline: each process's **replica daemon is the sole consumer
of its mailbox**; it parses every inbound message and records
client-relevant responses (ACKs, VALUE reports) into the process's
:class:`ReplicaState`. Client operations (the :meth:`RegisterEmulation.write`
/ :meth:`RegisterEmulation.read` generators) never touch the mailbox —
they broadcast, then poll the shared state, which eliminates the classic
two-readers-one-mailbox race.

Guarantees (with at most ``f`` Byzantine replicas and a correct writer):
**regular-register** semantics — a read returns a value at least as new
as the last write completed before it began (never a fabricated one,
because fabrication needs ``f + 1`` matching liars). Full atomicity
additionally needs the reader write-back round of [11]; see DESIGN.md's
substitution note. E9's layered experiment uses schedules with
non-overlapping low-level writes, for which regular and atomic coincide.

Substitution notes (the assumptions this module *substitutes* for the
paper's model, and where each one is discharged):

* **Reliable channels** — [11] assumes them; the default network
  (:class:`repro.mp.RandomDelayNetwork`) provides them. Over a
  fair-lossy :class:`repro.faults.FaultyNetwork` the assumption is
  rebuilt by passing ``channels=`` a
  :class:`repro.faults.RetransmitChannels`: every protocol message is
  then framed ``("CH", seq, payload)`` with ACK + seqno dedup +
  backoff retransmission, and the replica daemon doubles as the
  channel pump (unframing inbound traffic, emitting due retransmits
  each loop). Without channels over a lossy network, liveness is
  forfeit — exactly what the campaign's pinned ``STALLED`` cells
  measure.
* **Read termination** — the read loop re-queries so withheld replies
  cannot stall it; the re-query is *paced* (interval doubles from
  ``requery_every`` up to 16x) so an unconfirmable read does not flood
  the network while it waits.
* **SWSR restrictions / atomicity vs regularity** — unchanged from the
  original notes above (enforced by callers; write-back optional).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.sim.effects import Broadcast, Pause, ReceiveAll, Send
from repro.sim.process import Program
from repro.sim.system import System
from repro.sim.values import freeze


@dataclass
class EmulatedRegisterSpec:
    """Static description of one emulated register."""

    name: str
    writer: int
    initial: Any = None


class ReplicaState:
    """Per-process replica + client bookkeeping for all emulated registers."""

    def __init__(self, specs: Dict[str, EmulatedRegisterSpec]):
        #: Highest accepted (seq, value) per register.
        self.accepted: Dict[str, Tuple[int, Any]] = {
            name: (0, freeze(spec.initial)) for name, spec in specs.items()
        }
        #: Echo tallies: (register, seq, value) -> pids that echoed it.
        self.echo_votes: Dict[Tuple[str, int, Any], Set[int]] = {}
        #: Pairs this replica has itself echoed (echo at most once).
        self.echoed: Set[Tuple[str, int, Any]] = set()
        #: ACKs recorded for this process's own writes: (reg, seq) -> pids.
        self.acks: Dict[Tuple[str, int], Set[int]] = {}
        #: VALUE reports for this process's reads: (reg, rid) -> per-sender.
        self.value_reports: Dict[Tuple[str, int], Dict[int, Tuple[int, Any]]] = {}
        #: Monotone count of state *changes* (adoptions, fresh votes,
        #: fresh acks, changed reports) — a progress signal; duplicate
        #: or stale messages leave it untouched.
        self.version = 0

    def maybe_adopt(self, name: str, seq: int, value: Any) -> bool:
        """Adopt ``(seq, value)`` if strictly newer; returns adoption."""
        if seq > self.accepted[name][0]:
            self.accepted[name] = (seq, value)
            self.version += 1
            return True
        return False


class RegisterEmulation:
    """A set of SWMR registers emulated over the system's network.

    Args:
        system: A system with a network installed (``system.network``).
        f: Fault bound the emulation is configured for.
        channels: Optional :class:`repro.faults.RetransmitChannels`.
            When given, every protocol message travels channel-framed
            (ACK + dedup + retransmit) and the replica daemons pump the
            channel layer — restoring the reliable-channel assumption
            over a fair-lossy network. ``None`` keeps bare
            ``Send``/``Broadcast`` (correct over reliable networks).

    Usage: declare registers with :meth:`add_register`, spawn
    :meth:`replica_program` on every correct process, then run the
    :meth:`write` / :meth:`read` generators from client coroutines of the
    same processes.
    """

    def __init__(
        self,
        system: System,
        f: Optional[int] = None,
        channels: Optional[Any] = None,
    ):
        if system.network is None:
            raise ConfigurationError("RegisterEmulation requires a network")
        self.system = system
        self.f = system.f if f is None else f
        self.n = system.n
        self.channels = channels
        self._specs: Dict[str, EmulatedRegisterSpec] = {}
        self._write_seq: Dict[str, int] = {}
        self._read_id: Dict[int, int] = {}
        self._states: Dict[int, ReplicaState] = {}

    # ------------------------------------------------------------------
    # Transport: bare effects or channel-framed, decided once
    # ------------------------------------------------------------------
    def _send_effects(self, pid: int, dest: int, payload: Any) -> List[Any]:
        if self.channels is not None:
            return self.channels.send_effects(pid, dest, payload)
        return [Send(dest, payload)]

    def _broadcast_effects(self, pid: int, payload: Any) -> List[Any]:
        if self.channels is not None:
            return self.channels.broadcast_effects(pid, payload)
        return [Broadcast(payload)]

    def progress_version(self) -> int:
        """Monotone counter of protocol-state changes across all replicas.

        Bumped by adoptions, fresh echo votes, fresh ACKs, and changed
        VALUE reports — the "accepted" side of the progress signals a
        :class:`repro.faults.ProgressMonitor` watches. Retransmissions
        and duplicate messages do not move it.
        """
        return sum(state.version for state in self._states.values())

    # ------------------------------------------------------------------
    def add_register(self, name: str, writer: int, initial: Any = None) -> None:
        """Declare an emulated register before replicas start."""
        if name in self._specs:
            raise ConfigurationError(f"emulated register {name!r} already exists")
        if self._states:
            raise ConfigurationError("cannot add registers after replicas started")
        self._specs[name] = EmulatedRegisterSpec(name, writer, freeze(initial))
        self._write_seq[name] = 0

    def register_names(self) -> Tuple[str, ...]:
        """All declared emulated register names."""
        return tuple(self._specs)

    def state_of(self, pid: int) -> ReplicaState:
        """The replica state of ``pid`` (created on first use)."""
        if pid not in self._states:
            self._states[pid] = ReplicaState(self._specs)
        return self._states[pid]

    # ------------------------------------------------------------------
    # Replica daemon — sole mailbox consumer of its process
    # ------------------------------------------------------------------
    def replica_program(self, pid: int) -> Program:
        """The message-handling daemon every correct process runs.

        With channels installed it is also the channel pump: each loop
        emits the process's due retransmits, and inbound traffic is
        unframed (acked / deduped) before protocol handling.
        """
        state = self.state_of(pid)
        channels = self.channels
        while True:
            messages = yield ReceiveAll()
            if channels is not None:
                for effect in channels.due_retransmits(pid, self.system.clock):
                    yield effect
            if not messages:
                yield Pause()
                continue
            for sender, payload in messages:
                if channels is not None:
                    payload, ack_effects = channels.on_receive(pid, sender, payload)
                    for effect in ack_effects:
                        yield effect
                    if payload is None:
                        continue
                for effect in self._handle(pid, state, sender, payload):
                    yield effect

    def _handle(
        self, pid: int, state: ReplicaState, sender: int, payload: Any
    ) -> List[Any]:
        """Process one inbound message; returns effects to emit."""
        out: List[Any] = []
        if not isinstance(payload, tuple) or not payload:
            return out
        kind = payload[0]
        if kind == "WRITE" and len(payload) == 4:
            _k, name, seq, value = payload
            spec = self._specs.get(name)
            if (
                spec is not None
                and sender == spec.writer
                and isinstance(seq, int)
                and not isinstance(seq, bool)
                and seq > 0
            ):
                state.maybe_adopt(name, seq, value)
                key = (name, seq, value)
                if key not in state.echoed:
                    state.echoed.add(key)
                    out.extend(self._broadcast_effects(pid, ("ECHO", name, seq, value)))
                out.extend(self._send_effects(pid, spec.writer, ("ACK", name, seq)))
        elif kind == "ECHO" and len(payload) == 4:
            _k, name, seq, value = payload
            if (
                name in self._specs
                and isinstance(seq, int)
                and not isinstance(seq, bool)
                and seq > 0
            ):
                key = (name, seq, value)
                votes = state.echo_votes.setdefault(key, set())
                if sender not in votes:
                    votes.add(sender)
                    state.version += 1
                if len(votes) >= self.f + 1:
                    state.maybe_adopt(name, seq, value)
                    if key not in state.echoed:
                        state.echoed.add(key)
                        out.extend(
                            self._broadcast_effects(pid, ("ECHO", name, seq, value))
                        )
        elif kind == "READ" and len(payload) == 3:
            _k, name, rid = payload
            if name in self._specs:
                seq, value = state.accepted[name]
                out.extend(
                    self._send_effects(pid, sender, ("VALUE", name, rid, seq, value))
                )
        elif kind == "PULL" and len(payload) == 5:
            _k, name, seq, value, wb_id = payload
            if (
                name in self._specs
                and isinstance(seq, int)
                and not isinstance(seq, bool)
                and isinstance(wb_id, int)
            ):
                # Acknowledge only what this replica genuinely holds; a
                # Byzantine reader cannot make a replica adopt anything
                # through PULL (adoption still requires the writer or
                # f + 1 echoes), so write-back is abuse-proof.
                if state.accepted[name][0] >= seq:
                    out.extend(
                        self._send_effects(pid, sender, ("PULL-ACK", name, wb_id))
                    )
        elif kind == "PULL-ACK" and len(payload) == 3:
            _k, name, wb_id = payload
            if name in self._specs and isinstance(wb_id, int):
                acks = state.acks.setdefault((name, -wb_id), set())
                if sender not in acks:
                    acks.add(sender)
                    state.version += 1
        elif kind == "ACK" and len(payload) == 3:
            _k, name, seq = payload
            if name in self._specs and isinstance(seq, int):
                acks = state.acks.setdefault((name, seq), set())
                if sender not in acks:
                    acks.add(sender)
                    state.version += 1
        elif kind == "VALUE" and len(payload) == 5:
            _k, name, rid, seq, value = payload
            if (
                name in self._specs
                and isinstance(rid, int)
                and isinstance(seq, int)
                and not isinstance(seq, bool)
            ):
                reports = state.value_reports.setdefault((name, rid), {})
                if reports.get(sender) != (seq, value):
                    reports[sender] = (seq, value)
                    state.version += 1
        return out

    # ------------------------------------------------------------------
    # Client operations — broadcast, then poll the shared state
    # ------------------------------------------------------------------
    def write(self, pid: int, name: str, value: Any) -> Program:
        """Emulated ``write(value)``; returns when ``n - f`` replicas acked."""
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigurationError(f"unknown emulated register {name!r}")
        if spec.writer != pid:
            raise ConfigurationError(
                f"p{pid} is not the writer of emulated register {name!r}"
            )
        self._write_seq[name] += 1
        seq = self._write_seq[name]
        value = freeze(value)
        state = self.state_of(pid)
        # The writer is also a replica: adopt and self-ack before sending.
        state.maybe_adopt(name, seq, value)
        state.acks.setdefault((name, seq), set()).add(pid)
        for effect in self._broadcast_effects(pid, ("WRITE", name, seq, value)):
            yield effect
        while len(state.acks[(name, seq)]) < self.n - self.f:
            yield Pause()
        return "done"

    def read(
        self,
        pid: int,
        name: str,
        requery_every: int = 64,
        write_back: bool = False,
    ) -> Program:
        """Emulated ``read()``; returns a value confirmed by ``f + 1``.

        Re-broadcasts the query so replies withheld by Byzantine
        replicas or raced by timing cannot stall it. The re-query is
        *paced*: the first fires after ``requery_every`` polls and the
        interval doubles up to ``16 * requery_every``, so an
        unconfirmable read (e.g. under a partition) backs off instead
        of flooding the network.

        With ``write_back=True`` the reader additionally performs the
        [11]-style write-back round before returning: it broadcasts a
        ``PULL`` for the selected pair, replicas already holding it
        re-echo (their echoes are trustworthy — a Byzantine reader
        cannot trigger adoption of a value that never had ``f + 1``
        echoes), and the reader waits until ``n - f`` replicas
        acknowledge holding at least the selected sequence number. This
        closes the new/old-inversion window between two non-overlapping
        reads, strengthening regular semantics toward atomicity.
        """
        if name not in self._specs:
            raise ConfigurationError(f"unknown emulated register {name!r}")
        self._read_id[pid] = self._read_id.get(pid, 0) + 1
        rid = self._read_id[pid]
        state = self.state_of(pid)
        reports = state.value_reports.setdefault((name, rid), {})
        reports[pid] = state.accepted[name]
        for effect in self._broadcast_effects(pid, ("READ", name, rid)):
            yield effect
        polls = 0
        interval = requery_every
        next_requery = requery_every
        while True:
            # Refresh own report — the local replica may have adopted a
            # newer pair since the read began.
            if state.accepted[name][0] > reports[pid][0]:
                reports[pid] = state.accepted[name]
            confirmed = self._best_confirmed(reports)
            if confirmed is not None:
                break
            polls += 1
            if polls >= next_requery:
                interval = min(interval * 2, requery_every * 16)
                next_requery = polls + interval
                for effect in self._broadcast_effects(pid, ("READ", name, rid)):
                    yield effect
            yield Pause()
        seq, value = confirmed
        if write_back and seq > 0:
            yield from self._write_back(pid, name, seq, value, requery_every)
        return value

    def _write_back(
        self, pid: int, name: str, seq: int, value: Any, requery_every: int
    ) -> Program:
        """Propagate ``(seq, value)`` to ``n - f`` replicas before returning."""
        self._read_id[pid] = self._read_id.get(pid, 0) + 1
        wb_id = self._read_id[pid]
        state = self.state_of(pid)
        acks = state.acks.setdefault((name, -wb_id), set())
        acks.add(pid)
        for effect in self._broadcast_effects(pid, ("PULL", name, seq, value, wb_id)):
            yield effect
        polls = 0
        interval = requery_every
        next_requery = requery_every
        while len(acks) < self.n - self.f:
            polls += 1
            if polls >= next_requery:
                interval = min(interval * 2, requery_every * 16)
                next_requery = polls + interval
                for effect in self._broadcast_effects(
                    pid, ("PULL", name, seq, value, wb_id)
                ):
                    yield effect
            yield Pause()

    def _best_confirmed(
        self, reports: Dict[int, Tuple[int, Any]]
    ) -> Optional[Tuple[int, Any]]:
        """The highest-seq pair reported identically by ``f + 1`` replicas."""
        tally: Dict[Tuple[int, Any], int] = {}
        for pair in reports.values():
            tally[pair] = tally.get(pair, 0) + 1
        confirmed = [pair for pair, count in tally.items() if count >= self.f + 1]
        if not confirmed:
            return None
        return max(confirmed, key=lambda pair: pair[0])
