"""Asynchronous message-passing network for the simulator.

Models the standard asynchronous, reliable, authenticated-channel
network of [11] and [13]:

* **Asynchrony** — every message suffers an arbitrary finite delay, realized
  as a seeded random delay in virtual-time steps (so runs reproduce).
* **Reliability** — messages between correct processes are never lost;
  the network delivers every submitted message eventually.
* **Authenticated channels** — the receiver learns the true sender pid;
  a Byzantine process cannot spoof another's identity. This is a
  property of the kernel (the ``Send`` effect carries the stepping
  process's pid), not of this module.

The network plugs into ``System.network``; the kernel submits outgoing
messages and ticks the delivery queue once per step. Tests that need
adversarial message *ordering* use :class:`ScriptedNetwork`, which holds
every message until the test explicitly releases it.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import NetworkError
from repro.sim.fingerprint import digest64


@runtime_checkable
class Network(Protocol):
    """The kernel's network hook contract (``System.network``).

    Every network — :class:`RandomDelayNetwork`, :class:`ScriptedNetwork`,
    :class:`repro.faults.FaultyNetwork` — implements exactly this
    surface toward the kernel: the kernel calls :meth:`submit` for each
    outgoing ``Send``/``Broadcast`` destination and :meth:`tick` once
    per step before resuming the chosen coroutine; :meth:`pending`
    reports in-flight messages for drain checks and progress metrics.
    ``tests/test_network_protocol.py`` drives every implementation
    through one conformance driver against this protocol.
    """

    def submit(self, sender: int, dest: int, payload: Any, now: int) -> None:
        """Accept one outgoing message at clock ``now``."""
        ...

    def tick(self, now: int, system: Any) -> None:
        """Deliver whatever is due at clock ``now`` via ``system.deliver``."""
        ...

    def pending(self) -> int:
        """Messages accepted but not yet delivered (or suppressed)."""
        ...


@dataclass(order=True)
class _QueuedMessage:
    """Heap entry: ``(due_time, tiebreak)`` orders deliveries."""

    due: int
    tiebreak: int
    sender: int = field(compare=False)
    dest: int = field(compare=False)
    payload: Any = field(compare=False)


def _queued_digest(message: _QueuedMessage) -> int:
    """Fingerprint digest of one in-flight message.

    Unlike the rest of :meth:`repro.sim.System.fingerprint`, the due
    time and tiebreak *are* folded in: both determine future delivery
    order, so two states differing only there must not collapse in the
    explorer's memo table.
    """
    return digest64(
        f"net\x00{message.due}\x00{message.tiebreak}\x00{message.sender}"
        f"\x00{message.dest}\x00{message.payload!r}"
    )


class RandomDelayNetwork:
    """Reliable network with seeded random per-message delays.

    Args:
        seed: RNG seed; identical seeds give identical delivery orders.
        min_delay / max_delay: Inclusive bounds (in steps) on each
            message's delay. ``min_delay >= 1`` keeps sends asynchronous
            (a message is never receivable in the same step it was sent).
    """

    def __init__(self, seed: int = 0, min_delay: int = 1, max_delay: int = 24):
        if not 1 <= min_delay <= max_delay:
            raise NetworkError(
                f"need 1 <= min_delay <= max_delay, got {min_delay}, {max_delay}"
            )
        self._rng = random.Random(seed)
        self._min = min_delay
        self._max = max_delay
        self._heap: List[_QueuedMessage] = []
        self._tiebreak = itertools.count()
        self._fold = 0
        #: Total messages ever submitted (metrics).
        self.submitted = 0
        #: Total messages delivered into mailboxes (metrics).
        self.delivered = 0

    def submit(self, sender: int, dest: int, payload: Any, now: int) -> None:
        """Queue a message for future delivery (kernel hook)."""
        delay = self._rng.randint(self._min, self._max)
        message = _QueuedMessage(
            due=now + delay,
            tiebreak=next(self._tiebreak),
            sender=sender,
            dest=dest,
            payload=payload,
        )
        heapq.heappush(self._heap, message)
        self._fold ^= _queued_digest(message)
        self.submitted += 1

    def tick(self, now: int, system: Any) -> None:
        """Deliver every message whose due time has arrived (kernel hook)."""
        while self._heap and self._heap[0].due <= now:
            message = heapq.heappop(self._heap)
            self._fold ^= _queued_digest(message)
            system.deliver(message.sender, message.dest, message.payload)
            self.delivered += 1

    def pending(self) -> int:
        """Messages queued but not yet delivered."""
        return len(self._heap)

    def fingerprint_fold(self, full: bool = False) -> int:
        """XOR fold of the in-flight queue (see ``System.fingerprint``).

        Maintained incrementally — two XORs per submit/deliver, the
        PR-3 dirty-tracking scheme with a trivially empty dirty set
        (every mutation updates the fold in place). ``full=True``
        recomputes from the heap, the oracle the incremental path is
        pinned against.
        """
        if not full:
            return self._fold
        fold = 0
        for message in self._heap:
            fold ^= _queued_digest(message)
        return fold


class ScriptedNetwork:
    """A network whose deliveries are explicitly released by the test.

    Every submitted message is held in an inbox visible through
    :meth:`held`; the orchestrator calls :meth:`release` (or
    :meth:`release_matching`) to let specific messages through on the
    next tick. This gives message-level adversarial scheduling — the
    message-passing analogue of :class:`ScriptedScheduler`.
    """

    def __init__(self) -> None:
        self._held: List[Tuple[int, int, int, Any]] = []  # (id, sender, dest, payload)
        self._release_queue: List[Tuple[int, int, Any]] = []
        self._next_id = itertools.count()
        self._held_fold = 0
        self._queue_fold = 0
        self.submitted = 0
        self.delivered = 0

    @staticmethod
    def _held_digest(entry: Tuple[int, int, int, Any]) -> int:
        # Held messages are unordered (the id is the identity; release
        # picks by id or filter), so the entry digest alone suffices.
        return digest64(f"scripted-held\x00{entry!r}")

    @staticmethod
    def _queue_digest(index: int, entry: Tuple[int, int, Any]) -> int:
        # Released-but-undelivered messages deliver in queue order, so
        # the position must distinguish otherwise-equal queues.
        return digest64(f"scripted-queue\x00{index}\x00{entry!r}")

    def _enqueue_release(self, entry: Tuple[int, int, Any]) -> None:
        self._queue_fold ^= self._queue_digest(len(self._release_queue), entry)
        self._release_queue.append(entry)

    def submit(self, sender: int, dest: int, payload: Any, now: int) -> None:
        """Hold the message until the test releases it."""
        entry = (next(self._next_id), sender, dest, payload)
        self._held.append(entry)
        self._held_fold ^= self._held_digest(entry)
        self.submitted += 1

    def tick(self, now: int, system: Any) -> None:
        """Deliver everything previously released."""
        queue, self._release_queue = self._release_queue, []
        self._queue_fold = 0
        for sender, dest, payload in queue:
            system.deliver(sender, dest, payload)
            self.delivered += 1

    # ------------------------------------------------------------------
    def held(self) -> List[Tuple[int, int, int, Any]]:
        """Snapshot of held messages as ``(id, sender, dest, payload)``."""
        return list(self._held)

    def release(self, message_id: int) -> None:
        """Release one held message by id."""
        for index, (mid, sender, dest, payload) in enumerate(self._held):
            if mid == message_id:
                entry = self._held[index]
                del self._held[index]
                self._held_fold ^= self._held_digest(entry)
                self._enqueue_release((sender, dest, payload))
                return
        raise NetworkError(f"no held message with id {message_id}")

    def release_matching(
        self,
        sender: Optional[int] = None,
        dest: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> int:
        """Release held messages matching the filters; returns the count."""
        released = 0
        remaining: List[Tuple[int, int, int, Any]] = []
        for entry in self._held:
            mid, msg_sender, msg_dest, payload = entry
            matches = (sender is None or msg_sender == sender) and (
                dest is None or msg_dest == dest
            )
            if matches and (limit is None or released < limit):
                self._held_fold ^= self._held_digest(entry)
                self._enqueue_release((msg_sender, msg_dest, payload))
                released += 1
            else:
                remaining.append(entry)
        self._held = remaining
        return released

    def release_all(self) -> int:
        """Release everything currently held."""
        return self.release_matching()

    def pending(self) -> int:
        """Held plus released-but-undelivered message count."""
        return len(self._held) + len(self._release_queue)

    def fingerprint_fold(self, full: bool = False) -> int:
        """XOR fold of held + released-undelivered messages."""
        if not full:
            return self._held_fold ^ self._queue_fold
        fold = 0
        for entry in self._held:
            fold ^= self._held_digest(entry)
        for index, entry in enumerate(self._release_queue):
            fold ^= self._queue_digest(index, entry)
        return fold
