"""Asynchronous message-passing network for the simulator.

Models the standard asynchronous, reliable, authenticated-channel
network of [11] and [13]:

* **Asynchrony** — every message suffers an arbitrary finite delay, realized
  as a seeded random delay in virtual-time steps (so runs reproduce).
* **Reliability** — messages between correct processes are never lost;
  the network delivers every submitted message eventually.
* **Authenticated channels** — the receiver learns the true sender pid;
  a Byzantine process cannot spoof another's identity. This is a
  property of the kernel (the ``Send`` effect carries the stepping
  process's pid), not of this module.

The network plugs into ``System.network``; the kernel submits outgoing
messages and ticks the delivery queue once per step. Tests that need
adversarial message *ordering* use :class:`ScriptedNetwork`, which holds
every message until the test explicitly releases it.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NetworkError


@dataclass(order=True)
class _QueuedMessage:
    """Heap entry: ``(due_time, tiebreak)`` orders deliveries."""

    due: int
    tiebreak: int
    sender: int = field(compare=False)
    dest: int = field(compare=False)
    payload: Any = field(compare=False)


class RandomDelayNetwork:
    """Reliable network with seeded random per-message delays.

    Args:
        seed: RNG seed; identical seeds give identical delivery orders.
        min_delay / max_delay: Inclusive bounds (in steps) on each
            message's delay. ``min_delay >= 1`` keeps sends asynchronous
            (a message is never receivable in the same step it was sent).
    """

    def __init__(self, seed: int = 0, min_delay: int = 1, max_delay: int = 24):
        if not 1 <= min_delay <= max_delay:
            raise NetworkError(
                f"need 1 <= min_delay <= max_delay, got {min_delay}, {max_delay}"
            )
        self._rng = random.Random(seed)
        self._min = min_delay
        self._max = max_delay
        self._heap: List[_QueuedMessage] = []
        self._tiebreak = itertools.count()
        #: Total messages ever submitted (metrics).
        self.submitted = 0
        #: Total messages delivered into mailboxes (metrics).
        self.delivered = 0

    def submit(self, sender: int, dest: int, payload: Any, now: int) -> None:
        """Queue a message for future delivery (kernel hook)."""
        delay = self._rng.randint(self._min, self._max)
        heapq.heappush(
            self._heap,
            _QueuedMessage(
                due=now + delay,
                tiebreak=next(self._tiebreak),
                sender=sender,
                dest=dest,
                payload=payload,
            ),
        )
        self.submitted += 1

    def tick(self, now: int, system: Any) -> None:
        """Deliver every message whose due time has arrived (kernel hook)."""
        while self._heap and self._heap[0].due <= now:
            message = heapq.heappop(self._heap)
            system.deliver(message.sender, message.dest, message.payload)
            self.delivered += 1

    def pending(self) -> int:
        """Messages queued but not yet delivered."""
        return len(self._heap)


class ScriptedNetwork:
    """A network whose deliveries are explicitly released by the test.

    Every submitted message is held in an inbox visible through
    :meth:`held`; the orchestrator calls :meth:`release` (or
    :meth:`release_matching`) to let specific messages through on the
    next tick. This gives message-level adversarial scheduling — the
    message-passing analogue of :class:`ScriptedScheduler`.
    """

    def __init__(self) -> None:
        self._held: List[Tuple[int, int, int, Any]] = []  # (id, sender, dest, payload)
        self._release_queue: List[Tuple[int, int, Any]] = []
        self._next_id = itertools.count()
        self.submitted = 0
        self.delivered = 0

    def submit(self, sender: int, dest: int, payload: Any, now: int) -> None:
        """Hold the message until the test releases it."""
        self._held.append((next(self._next_id), sender, dest, payload))
        self.submitted += 1

    def tick(self, now: int, system: Any) -> None:
        """Deliver everything previously released."""
        queue, self._release_queue = self._release_queue, []
        for sender, dest, payload in queue:
            system.deliver(sender, dest, payload)
            self.delivered += 1

    # ------------------------------------------------------------------
    def held(self) -> List[Tuple[int, int, int, Any]]:
        """Snapshot of held messages as ``(id, sender, dest, payload)``."""
        return list(self._held)

    def release(self, message_id: int) -> None:
        """Release one held message by id."""
        for index, (mid, sender, dest, payload) in enumerate(self._held):
            if mid == message_id:
                del self._held[index]
                self._release_queue.append((sender, dest, payload))
                return
        raise NetworkError(f"no held message with id {message_id}")

    def release_matching(
        self,
        sender: Optional[int] = None,
        dest: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> int:
        """Release held messages matching the filters; returns the count."""
        released = 0
        remaining: List[Tuple[int, int, int, Any]] = []
        for entry in self._held:
            mid, msg_sender, msg_dest, payload = entry
            matches = (sender is None or msg_sender == sender) and (
                dest is None or msg_dest == dest
            )
            if matches and (limit is None or released < limit):
                self._release_queue.append((msg_sender, msg_dest, payload))
                released += 1
            else:
                remaining.append(entry)
        self._held = remaining
        return released

    def release_all(self) -> int:
        """Release everything currently held."""
        return self.release_matching()

    def pending(self) -> int:
        """Held plus released-but-undelivered message count."""
        return len(self._held) + len(self._release_queue)
