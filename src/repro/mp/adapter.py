"""Run shared-memory algorithms unchanged over emulated registers.

The paper's final remark: because SWMR registers can be emulated in
message-passing systems with ``n > 3f`` [11], verifiable, authenticated
and sticky registers exist there too — *the same algorithms, different
substrate*. This module makes that literal: :func:`translate` wraps any
shared-memory program (a generator of effects) and re-interprets its
``ReadRegister`` / ``WriteRegister`` effects as runs of the emulation's
quorum protocols, leaving every other effect untouched.

So experiment E9 executes Algorithm 1's *exact code* — the same
generators, line for line — over messages.

Caveats (documented in DESIGN.md's substitution notes):

* The emulation does not enforce SWSR read restrictions (any process may
  query any emulated register); Algorithms 1–3 never read registers they
  should not, so this is unobservable for correct code.
* The emulation provides regular (not fully atomic) semantics under
  read/write concurrency; E9's schedules keep low-level writes
  non-overlapping, where the two coincide.
* The translation inherits the emulation's *channel* assumption: over
  the default reliable network nothing extra is needed, while over a
  fair-lossy :class:`repro.faults.FaultyNetwork` the emulation must be
  constructed with ``channels=RetransmitChannels(...)`` — the adapter
  is transport-agnostic, so translated algorithms ride the retransmit
  layer without change.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.interfaces import AlgorithmBase
from repro.mp.swmr_emulation import RegisterEmulation
from repro.sim.effects import ReadRegister, WriteRegister
from repro.sim.process import Program


def declare_registers(emu: RegisterEmulation, impl: AlgorithmBase) -> None:
    """Declare every register of ``impl`` as an emulated register.

    Used *instead of* ``impl.install()``: the register family lives in
    the emulation's replicas, not in the system's shared memory.
    """
    for spec in impl.register_specs():
        emu.add_register(spec.name, writer=spec.writer, initial=spec.initial)


def translate(emu: RegisterEmulation, pid: int, program: Program) -> Program:
    """Re-interpret a shared-memory program's register effects over messages.

    Every ``ReadRegister`` becomes an emulated quorum read, every
    ``WriteRegister`` an emulated quorum write; ``Invoke``/``Respond``/
    ``Pause`` and the rest pass straight through to the kernel, so
    histories record identically to the shared-memory runs.
    """
    to_send: Any = None
    first = True
    while True:
        try:
            effect = next(program) if first else program.send(to_send)
        except StopIteration as stop:
            return stop.value
        first = False
        if isinstance(effect, ReadRegister):
            to_send = yield from emu.read(pid, effect.register)
        elif isinstance(effect, WriteRegister):
            yield from emu.write(pid, effect.register, effect.value)
            to_send = None
        else:
            to_send = yield effect


def translated_op(
    emu: RegisterEmulation, impl: AlgorithmBase, pid: int, opname: str, *args: Any
) -> Program:
    """A recorded operation of ``impl`` executed over the emulation."""
    return translate(emu, pid, impl.op(pid, opname, *args))


def translated_help(
    emu: RegisterEmulation, impl: AlgorithmBase, pid: int
) -> Program:
    """``impl``'s Help daemon executed over the emulation."""
    return translate(emu, pid, impl.procedure_help(pid))
