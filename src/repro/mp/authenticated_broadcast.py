"""Srikanth–Toueg authenticated broadcast, signature-free ([13]).

The historical ancestor of the paper's witness mechanism: in a
message-passing system with ``n > 3f``, *authenticated broadcast*
provides the properties of signed communication — correctness,
unforgeability, and relay — without signatures, via echo amplification:

* ``broadcast(m, k)``: the sender sends ``⟨init, s, m, k⟩`` to all.
* On receiving ``⟨init, s, m, k⟩`` from ``s`` itself, a process sends
  ``⟨echo, s, m, k⟩`` to all.
* On receiving ``⟨echo, s, m, k⟩`` from ``f + 1`` distinct processes, a
  process sends its own echo (if it has not yet) — at least one of the
  ``f + 1`` is correct, so the sender really initiated the message.
* On receiving ``⟨echo, s, m, k⟩`` from ``n - f`` distinct processes, a
  process **accepts** ``(s, m, k)``.

Section 2 of the paper explains why this machinery, transplanted to
shared memory, is *not* enough: acceptance here is **eventual** — there
is no moment at which a non-accepting process can definitively answer
"no", which is exactly what a ``Verify`` operation must do. The
experiment E9b runs this implementation next to Algorithm 1 to exhibit
the difference: `accepted` sets grow monotonically, but the module
deliberately offers no terminating negative query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.sim.effects import Broadcast, Pause, ReceiveAll
from repro.sim.process import Program
from repro.sim.system import System
from repro.sim.values import freeze

#: An authenticated-broadcast triple: (sender, message, sequence-number).
Triple = Tuple[int, Any, int]


class AuthenticatedBroadcast:
    """ST87 echo-amplified broadcast over the system's network.

    Every correct process runs :meth:`daemon` (its sole mailbox
    consumer). A sender calls :meth:`broadcast` from a client coroutine.
    Acceptance is observable through :meth:`accepted_by`.
    """

    def __init__(self, system: System, f: Optional[int] = None):
        if system.network is None:
            raise ConfigurationError("AuthenticatedBroadcast requires a network")
        self.system = system
        self.f = system.f if f is None else f
        self.n = system.n
        self._echo_votes: Dict[int, Dict[Triple, Set[int]]] = {}
        self._echoed: Dict[int, Set[Triple]] = {}
        self._accepted: Dict[int, Set[Triple]] = {}

    # ------------------------------------------------------------------
    def accepted_by(self, pid: int) -> Set[Triple]:
        """The triples process ``pid`` has accepted so far."""
        return set(self._accepted.get(pid, set()))

    def everyone_accepted(self, triple: Triple, pids: List[int]) -> bool:
        """Whether every listed process has accepted ``triple``."""
        return all(triple in self._accepted.get(pid, set()) for pid in pids)

    # ------------------------------------------------------------------
    def broadcast(self, pid: int, message: Any, seq: int) -> Program:
        """Send the init message; fire-and-forget (acceptance is eventual)."""
        yield Broadcast(("init", pid, freeze(message), seq))
        return None

    def daemon(self, pid: int) -> Program:
        """Echo/accept daemon; the process's sole mailbox consumer."""
        votes = self._echo_votes.setdefault(pid, {})
        echoed = self._echoed.setdefault(pid, set())
        accepted = self._accepted.setdefault(pid, set())
        while True:
            messages = yield ReceiveAll()
            if not messages:
                yield Pause()
                continue
            for sender, payload in messages:
                if not isinstance(payload, tuple) or len(payload) != 4:
                    continue
                kind, origin, message, seq = payload
                if not isinstance(origin, int) or not isinstance(seq, int):
                    continue
                triple: Triple = (origin, message, seq)
                if kind == "init" and sender == origin:
                    # Echo only messages genuinely sent by their sender —
                    # the channel authentication at work.
                    if triple not in echoed:
                        echoed.add(triple)
                        yield Broadcast(("echo", origin, message, seq))
                elif kind == "echo":
                    supporters = votes.setdefault(triple, set())
                    supporters.add(sender)
                    if len(supporters) >= self.f + 1 and triple not in echoed:
                        echoed.add(triple)
                        yield Broadcast(("echo", origin, message, seq))
                    if len(supporters) >= self.n - self.f:
                        accepted.add(triple)
