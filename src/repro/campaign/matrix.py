"""Differential conformance campaigns over the implementation matrix.

Where ``repro.explore`` searches the schedule space of *one* scenario,
a *campaign* quantifies over the other axes of the paper's claims too:
it builds a matrix of cells — (implementation × scenario × engine ×
parameters) — covering every ``repro.core`` implementation family
(:data:`IMPLEMENTATIONS`), fans the cells out across a multiprocessing
pool (the same worker plumbing as :mod:`repro.explore.fuzzer`), and
*differentially* judges each cell: every run's history is checked
against the implementation's sequential specification through the
``repro.spec`` oracles (the property checkers plus the Wing–Gong
Byzantine-linearizability search), and the presence or absence of
violations is compared against what the paper proves for that cell.

The differential expectations encode the paper's boundary:

* Algorithms 1–3 (verifiable / authenticated / sticky) and the
  signature-based baseline must survive every schedule and adversary
  mix — any violation is a bug in the implementation (or the paper);
* the Section 5.1 naive strawman must *break* under the flip-flop
  collusion (and hold without an adversary);
* the quorum test-or-set at ``n = 3f`` must exhibit the Theorem 29
  relay violation, and the same bounds must come back clean at
  ``n = 3f + 1``.

Any violation a campaign finds is auto-shrunk
(:mod:`repro.explore.shrink`) and persisted into the replayable corpus
(:mod:`repro.campaign.corpus`), so each discovered counterexample
becomes a standing regression test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, SchedulerError
from repro.explore.explorer import explore
from repro.explore.fuzzer import default_shards, fuzz, pool_context
from repro.explore.scenarios import Scenario, Violation
from repro.explore.shrink import ShrunkViolation, shrink
from repro.scenarios import bindings as _bindings
from repro.scenarios import registry as _registry
from repro.spec.sequential import SequentialSpec
from repro.campaign.corpus import entry_from_shrunk, save_entry

# Engines a cell may run: seeded swarm fuzzing or bounded systematic
# search (see ``repro.explore``); owned by the registry.
from repro.scenarios.registry import ENGINES  # noqa: F401  (re-export)


def __getattr__(name: str):
    # ``IMPLEMENTATIONS`` — the implementation families the default
    # campaign covers: every family with at least one campaign-consumer
    # record in the unified scenario registry (the six ``repro.core``
    # families plus the paper-level applications). Live-only families
    # (engine ``"live"``, e.g. the ``net`` socket runtime) are registry
    # members but excluded here: their cells execute on wall clocks
    # through ``python -m repro.analysis net``, never as campaign
    # cells. Computed on attribute access, not snapshotted at import:
    # families registered later through the public
    # ``repro.scenarios.register`` API must show up, and the module
    # stays importable without forcing the full catalog load.
    if name == "IMPLEMENTATIONS":
        return _registry.registered_families(consumer="campaign")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def oracle_for(implementation: str, initial: int = 0) -> SequentialSpec:
    """The sequential specification a cell's runs are judged against.

    A thin view over the registry's one family→oracle table
    (:mod:`repro.scenarios.bindings`) — the same binding the runtime
    checkers and the early-exit monitors derive from, so the two can
    never drift apart. The differential shape lives there: the naive
    strawman and the signature baseline are checked against the *same*
    :class:`repro.spec.VerifiableRegisterSpec` as Algorithm 1 — they
    implement the same object, so any observable divergence is a
    conformance violation of that implementation, not a different spec.
    """
    return _bindings.oracle_for(implementation, initial=initial)


@dataclass(frozen=True)
class CampaignCell:
    """One matrix cell: an implementation under one scenario and engine.

    Cells are picklable (frozen, hashable fields only) so the pool can
    ship them to workers, and deterministic: a cell's findings are a
    pure function of its spec, independent of which worker runs it.
    """

    implementation: str
    scenario: Scenario
    engine: str
    budget: int
    expect_violation: bool
    seed0: int = 0
    depth_bound: int = 14
    preemption_bound: int = 2
    #: Systematic-engine reduction mode (see ``repro.explore.explore``);
    #: swarm cells ignore both. ``symmetry`` holds the scenario's
    #: interchangeable-process groups for ``"dpor+symmetry"``.
    reduction: str = "sleep"
    symmetry: Tuple[Tuple[int, ...], ...] = ()

    def label(self) -> str:
        """Compact cell identity for progress lines and tables."""
        return f"{self.implementation}/{self.engine}:{self.scenario.label()}"


@dataclass
class CellOutcome:
    """What running one cell produced."""

    cell: CampaignCell
    runs: int = 0
    steps: int = 0
    incomplete: int = 0
    elapsed: float = 0.0
    violations: List[Violation] = field(default_factory=list)
    note: str = ""

    @property
    def ok(self) -> bool:
        """Whether the cell matched its differential expectation."""
        return bool(self.violations) == self.cell.expect_violation

    @property
    def runs_per_sec(self) -> float:
        """Schedules executed per wall-clock second inside the cell."""
        return self.runs / self.elapsed if self.elapsed > 0 else 0.0

    def describe(self) -> str:
        """One progress line for the CLI.

        Liveness verdicts are worded apart from safety breaks: a cell
        whose violation classes are all ``STALLED`` diagnoses reads
        "stall class(es)", a mix annotates how many of the classes are
        stalls. The payload/fingerprint plumbing is untouched — this is
        presentation only.
        """
        stalls = sum(1 for violation in self.violations if violation.is_stall)
        if not self.violations:
            found = "clean"
        elif stalls == len(self.violations):
            found = f"{len(self.violations)} stall class(es)"
        elif stalls:
            found = (
                f"{len(self.violations)} violation class(es), "
                f"{stalls} stall(s)"
            )
        else:
            found = f"{len(self.violations)} violation class(es)"
        verdict = "as expected" if self.ok else "UNEXPECTED"
        return (
            f"{self.cell.label()}: {found} ({verdict}) in {self.runs} runs, "
            f"{self.runs_per_sec:.0f} runs/s"
        )


@dataclass
class CampaignReport:
    """Aggregated outcome of one differential campaign."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    shards: int = 1
    elapsed: float = 0.0
    shrunk: List[ShrunkViolation] = field(default_factory=list)
    shrink_failures: List[str] = field(default_factory=list)
    #: Violation-class fingerprints found but not shrunk because the
    #: per-campaign cap was hit; recorded so library callers see them
    #: even without a progress sink.
    shrink_deferred: List[str] = field(default_factory=list)
    corpus_written: List[str] = field(default_factory=list)
    corpus_existing: int = 0

    @property
    def runs(self) -> int:
        """Total schedules executed across all cells."""
        return sum(outcome.runs for outcome in self.outcomes)

    @property
    def steps(self) -> int:
        """Total simulator steps across all cells."""
        return sum(outcome.steps for outcome in self.outcomes)

    @property
    def runs_per_sec(self) -> float:
        """Aggregate campaign throughput (pool wall-clock)."""
        return self.runs / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def steps_per_sec(self) -> float:
        """Aggregate simulator steps per wall-clock second."""
        return self.steps / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mismatched(self) -> List[CellOutcome]:
        """Cells whose findings contradicted the differential expectation."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        """True iff every cell matched its expectation."""
        return not self.mismatched

    def summary(self) -> str:
        """One-paragraph rendering for the CLI."""
        matched = len(self.outcomes) - len(self.mismatched)
        corpus = (
            f"; corpus: {len(self.corpus_written)} new entr"
            f"{'y' if len(self.corpus_written) == 1 else 'ies'}, "
            f"{self.corpus_existing} already recorded"
            if self.corpus_written or self.corpus_existing
            else ""
        )
        deferred = (
            f" ({len(self.shrink_deferred)} deferred)"
            if self.shrink_deferred
            else ""
        )
        return (
            f"campaign: {matched}/{len(self.outcomes)} cells matched "
            f"expectations in {self.runs} runs across {self.shards} worker(s); "
            f"{self.runs_per_sec:.0f} runs/s, {self.steps_per_sec:.0f} steps/s; "
            f"{len(self.shrunk)} violation class(es) shrunk{deferred}{corpus}"
        )


def default_matrix(
    smoke: bool = False,
    seed0: int = 0,
    swarm_budget: Optional[int] = None,
    systematic_budget: Optional[int] = None,
    implementations: Optional[Sequence[str]] = None,
) -> List[CampaignCell]:
    """The standard campaign matrix: a query over the scenario registry.

    Every record with the ``campaign`` consumer (``smoke`` for the
    bounded CI subset) expands to one cell, in registration order —
    Algorithms 1–3 under the E1–E3 adversary grids, the signature
    baseline, the naive strawman (with its known-violating flip-flop
    cell), the Theorem 29 boundary through both engines, the
    campaign-growth adversary mixes, and the application cells
    (snapshot, asset transfer) at both fault boundaries. Budgets can be
    overridden per engine; ``implementations`` filters the families;
    ``seed0`` re-pins every seeded workload.

    Budgets are honored exactly — a caller-chosen budget too small to
    find an expected violation fails the campaign loudly rather than
    being silently floored.
    """
    families = _registry.registered_families(consumer="campaign")
    wanted = tuple(implementations) if implementations else families
    for implementation in wanted:
        if implementation not in families:
            raise ConfigurationError(
                f"unknown implementation {implementation!r}; "
                f"known: {', '.join(families)}"
            )
    swarm = (24 if smoke else 150) if swarm_budget is None else swarm_budget
    systematic = (
        (200 if smoke else 500) if systematic_budget is None else systematic_budget
    )
    if swarm < 1 or systematic < 1:
        raise ConfigurationError("cell budgets must be >= 1")
    cells: List[CampaignCell] = []
    for record in _registry.grid(consumer="smoke" if smoke else "campaign"):
        if record.family not in wanted:
            continue
        record = record.seeded(seed0)
        cells.append(
            CampaignCell(
                implementation=record.family,
                scenario=record.spec,
                engine=record.engine,
                budget=swarm if record.engine == "swarm" else systematic,
                expect_violation=record.expect_violation,
                seed0=seed0,
                reduction=record.reduction,
                symmetry=record.symmetry,
            )
        )
    return cells


def run_cell(cell: CampaignCell) -> CellOutcome:
    """Worker entry point: execute one matrix cell to completion.

    This is *the* cell-execution path: the one-shot pool workers, the
    bench harness and the ``repro.service`` leasing workers all call
    it, which is what makes a cell's verdict a pure function of its
    spec — byte-identical however and wherever it is executed.

    Swarm cells run a single-shard :func:`repro.explore.fuzzer.fuzz`
    campaign — pool parallelism is across cells, so a cell's findings
    stay a deterministic function of its spec. Cells that *expect* a
    violation stop at the first hit; the find is what matters, and the
    shrinker minimizes it afterwards.

    Every cell shares one :class:`repro.spec.CheckContext` across its
    runs (built inside the engine, so it never crosses the pool's
    pickling boundary). Early exit is armed exactly on the cells that
    expect *clean* runs: there it is free insurance — a regression stops
    simulating the moment its partial history is irrecoverably broken —
    while the violation-expecting cells keep full-horizon runs, whose
    exact reasons the shrink/corpus pipeline fingerprints.
    """
    early_exit = not cell.expect_violation
    if cell.engine == "systematic":
        report = explore(
            cell.scenario,
            depth_bound=cell.depth_bound,
            preemption_bound=cell.preemption_bound,
            budget=cell.budget,
            stop_on_violation=cell.expect_violation,
            # Campaign cells already fan out across the worker pool; the
            # fork branch executor would only oversubscribe the cores,
            # so cells always use the replay engine.
            prefix_sharing="replay",
            early_exit=early_exit,
            reduction=cell.reduction,
            symmetry=cell.symmetry,
        )
        return CellOutcome(
            cell=cell,
            runs=report.runs,
            steps=report.steps,
            incomplete=report.incomplete,
            elapsed=report.elapsed,
            violations=list(report.violations),
            note="exhausted" if report.exhausted else "budget",
        )
    report = fuzz(
        cell.scenario,
        budget=cell.budget,
        shards=1,
        seed0=cell.seed0,
        stop_on_violation=cell.expect_violation,
        early_exit=early_exit,
    )
    return CellOutcome(
        cell=cell,
        runs=report.runs,
        steps=report.steps,
        incomplete=report.incomplete,
        elapsed=report.elapsed,
        violations=list(report.violations),
        note=f"{sum(report.violation_counts.values())} violating run(s)",
    )


#: Historical alias; the public name is :func:`run_cell`.
_run_cell = run_cell


def _run_indexed_cell(
    payload: Tuple[int, CampaignCell]
) -> Tuple[int, CellOutcome]:
    """Pool adapter: carry the matrix position alongside the outcome."""
    index, cell = payload
    return index, run_cell(cell)


def run_campaign(
    cells: Optional[Sequence[CampaignCell]] = None,
    shards: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    shrink_violations: bool = True,
    max_shrink_replays: int = 400,
    max_shrink_classes: int = 8,
    corpus_dir: Optional[Union[str, Path]] = None,
    corpus_source: str = "campaign",
) -> CampaignReport:
    """Run a differential campaign over ``cells``.

    Args:
        cells: Matrix cells (:func:`default_matrix` when omitted).
        shards: Worker processes (``explore.fuzzer.default_shards`` when
            omitted); 1 runs inline.
        progress: Optional sink for per-cell progress lines.
        shrink_violations: Minimize each discovered violation class.
        max_shrink_replays: Replay budget per shrink.
        max_shrink_classes: Cap on classes shrunk per campaign (the
            remainder is reported unshrunk, never silently dropped).
        corpus_dir: Where to persist shrunk entries (None: don't).
        corpus_source: Free-form provenance recorded in new entries.
    """
    cells = list(default_matrix() if cells is None else cells)
    if not cells:
        raise ConfigurationError("campaign needs at least one cell")
    shard_count = default_shards() if shards is None else max(1, shards)
    shard_count = min(shard_count, len(cells))
    report = CampaignReport(shards=shard_count)
    emit = progress or (lambda line: None)

    started = time.perf_counter()
    # Results are keyed by matrix position, not cell value: equal cells
    # (a caller may legitimately repeat one) must each keep their own
    # outcome in the aggregation.
    by_index: Dict[int, CellOutcome] = {}
    if shard_count == 1:
        for index, cell in enumerate(cells):
            outcome = run_cell(cell)
            by_index[index] = outcome
            emit(outcome.describe())
    else:
        with pool_context().Pool(processes=shard_count) as pool:
            for index, outcome in pool.imap_unordered(
                _run_indexed_cell, list(enumerate(cells))
            ):
                by_index[index] = outcome
                emit(outcome.describe())
    report.outcomes = [by_index[index] for index in range(len(cells))]
    report.elapsed = time.perf_counter() - started

    if shrink_violations:
        _shrink_and_persist(
            report,
            emit,
            max_shrink_replays,
            max_shrink_classes,
            corpus_dir,
            corpus_source,
        )
    return report


def canonicalize_violation(
    scenario: Scenario, violation: Violation
) -> Violation:
    """Re-derive a violation's reason from a full-horizon replay.

    Violations found by early-exit runs carry the *truncated* history's
    reason; the shrinker and the corpus replay at full horizon, where
    the same trace can accumulate further violating pairs and change
    the class fingerprint. One replay per class re-anchors the reason
    to what every later replay will see. Full-horizon finds replay to
    themselves (the determinism the corpus suite pins), so this is a
    no-op for them; an unreplayable violation is returned unchanged and
    left for :func:`repro.explore.shrink.shrink` to report.
    """
    from repro.explore.explorer import execute_trace

    try:
        record = execute_trace(scenario, violation.trace)
    except SchedulerError:
        return violation
    if record.violation is None:
        return violation
    return Violation(
        scenario=violation.scenario,
        reason=record.violation.reason,
        trace=violation.trace,
        schedule=violation.schedule,
        seed=violation.seed,
    )


def _shrink_and_persist(
    report: CampaignReport,
    emit: Callable[[str], None],
    max_shrink_replays: int,
    max_shrink_classes: int,
    corpus_dir,
    corpus_source: str,
) -> None:
    """Shrink one representative per violation class; persist to corpus.

    Classes are deduplicated across cells (the theorem29 race found by
    both engines shrinks once). Expected and *unexpected* violations
    are both shrunk — an unexpected one is exactly the counterexample
    worth a corpus entry and a bisection session; since unexpected ones
    come from early-exit cells, they are canonicalized to their
    full-horizon reason first (see :func:`canonicalize_violation`).
    """
    # Two-stage dedup. Stage 1 groups by the fingerprint the finder
    # reported. Stage 2: clean-expecting cells run with early exit
    # armed, so their (unexpected) violations carry truncated-history
    # reasons — canonicalize one representative per truncated class to
    # its full-horizon reason (one replay per class, not per violating
    # run) and re-key, so one defect found through several truncations
    # still shrinks once. Violation-expecting cells ran full-horizon —
    # their finds already are canonical, no replay needed.
    truncated: Dict[Tuple[str, str], Tuple[Scenario, Violation, bool]] = {}
    for outcome in report.outcomes:
        early_exit_cell = not outcome.cell.expect_violation
        for violation in outcome.violations:
            key = (outcome.cell.scenario.label(), violation.fingerprint())
            truncated.setdefault(
                key, (outcome.cell.scenario, violation, early_exit_cell)
            )
    representatives: Dict[Tuple[str, str], Tuple[Scenario, Violation]] = {}
    for (label, _), (scenario, violation, early_exit_cell) in truncated.items():
        if early_exit_cell:
            canonical = canonicalize_violation(scenario, violation)
            if canonical.fingerprint() != violation.fingerprint():
                emit(
                    f"canonicalized early-exit violation to "
                    f"full-horizon class {canonical.fingerprint()}"
                )
            violation = canonical
        representatives.setdefault(
            (label, violation.fingerprint()), (scenario, violation)
        )
    report.shrink_deferred = [
        violation.fingerprint()
        for _scenario, violation in list(representatives.values())[
            max_shrink_classes:
        ]
    ]
    if report.shrink_deferred:
        emit(
            f"shrinking first {max_shrink_classes} of "
            f"{len(representatives)} violation classes "
            f"({len(report.shrink_deferred)} deferred)"
        )
    for scenario, violation in list(representatives.values())[:max_shrink_classes]:
        try:
            shrunk = shrink(scenario, violation, max_replays=max_shrink_replays)
        except ValueError as exc:
            report.shrink_failures.append(f"{violation.fingerprint()}: {exc}")
            emit(f"shrink failed for {violation.fingerprint()}: {exc}")
            continue
        report.shrunk.append(shrunk)
        emit(f"  {shrunk.describe()}")
        if corpus_dir is None:
            continue
        entry = entry_from_shrunk(scenario, shrunk, source=corpus_source)
        path, written = save_entry(corpus_dir, entry)
        if written:
            report.corpus_written.append(str(path))
            emit(f"  corpus + {path}")
        else:
            report.corpus_existing += 1
            emit(f"  corpus = {path} (already recorded)")
