"""The persistent violation corpus: shrunk counterexamples on disk.

Every violation a campaign (or any exploration run) shrinks can be
serialized into a *corpus entry* — a small versioned JSON document
holding the scenario spec, the minimized decision trace, the violated
property and the violation's class fingerprint. The corpus directory
(``corpus/`` at the repository root) is committed, and
``tests/test_corpus_replay.py`` replays every entry through
:class:`repro.sim.TraceScheduler` on each test run, so a counterexample
found once can never silently regress: if a later change re-opens the
schedule hole (or breaks determinism of the replay), the parametrized
regression test for that entry fails with the original reason.

Entry identity is the pair ``(scenario label, violation fingerprint)``
hashed into a short stable id, so re-running a campaign does not churn
the corpus: a class that is already recorded is skipped (its committed —
and therefore already reviewed — trace wins over the fresh one).

Promotion path: a corpus entry is the mechanical form of a regression;
to turn one into a *named* test, render its scripted schedule with
:meth:`CorpusEntry.script_source` and paste it into a test module (see
README "Campaigns & corpus").
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from repro.errors import ConfigurationError, SchedulerError
from repro.explore.explorer import execute_trace
from repro.explore.scenarios import Scenario, Violation
from repro.explore.shrink import ShrunkViolation, render_script_source
from repro.scenarios.registry import known_scenarios, resolve_spec

#: Corpus on-disk format version; bump on incompatible layout changes.
#: The loader rejects entries from other versions loudly instead of
#: replaying them wrongly.
CORPUS_VERSION = 1


def _freeze_json(value: Any) -> Any:
    """Recursively turn JSON arrays back into the tuples specs expect.

    Scenario params are hashable tuples (e.g. ``reader_adversaries``
    pair lists); JSON round-trips them as lists, which would change the
    scenario label and break fingerprint matching.
    """
    if isinstance(value, list):
        return tuple(_freeze_json(item) for item in value)
    return value


@dataclass(frozen=True)
class CorpusEntry:
    """One shrunk counterexample, ready for replay.

    ``trace`` is a decision-index prefix for
    :class:`repro.sim.TraceScheduler` (the round-robin completion after
    the prefix is implicit); ``script`` is the equivalent explicit
    ``(pid, role)`` step list for human consumption and promotion to a
    named regression test.
    """

    entry_id: str
    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    trace: Tuple[int, ...]
    reason: str
    fingerprint: str
    script: Tuple[Tuple[int, str], ...] = ()
    schedule: str = ""
    source: str = ""
    version: int = CORPUS_VERSION

    def scenario_spec(self) -> Scenario:
        """The scenario this entry replays against.

        Resolved through the unified registry: the recorded params are
        preserved verbatim (labels and fingerprints were derived from
        them), and the scenario name must still be a registered builder.
        """
        return resolve_spec(self.scenario, self.params)

    def file_name(self) -> str:
        """Stable corpus file name for this entry."""
        return f"{self.scenario}-{self.entry_id}.json"

    def label(self) -> str:
        """Human-readable identity for test ids and reports."""
        return f"{self.scenario_spec().label()}#{self.entry_id}"

    def script_source(self) -> str:
        """Python source of a ScriptedScheduler reproducing the violation."""
        return render_script_source(
            self.script,
            (
                f"Corpus entry {self.entry_id} for {self.scenario_spec().label()}:",
                f"  {self.reason}",
            ),
        )

    def to_json(self) -> dict:
        """The JSON document this entry serializes to."""
        return {
            "version": self.version,
            "entry_id": self.entry_id,
            "scenario": self.scenario,
            "params": [[key, value] for key, value in self.params],
            "trace": list(self.trace),
            "reason": self.reason,
            "fingerprint": self.fingerprint,
            "script": [[pid, role] for pid, role in self.script],
            "schedule": self.schedule,
            "source": self.source,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CorpusEntry":
        """Parse one corpus document, validating version and scenario."""
        version = data.get("version")
        if version != CORPUS_VERSION:
            raise ConfigurationError(
                f"corpus entry has version {version!r}, this loader "
                f"understands version {CORPUS_VERSION}"
            )
        scenario = data["scenario"]
        if scenario not in known_scenarios():
            raise ConfigurationError(
                f"corpus entry references unknown scenario {scenario!r}; "
                f"known: {', '.join(known_scenarios())}"
            )
        return cls(
            entry_id=data["entry_id"],
            scenario=scenario,
            params=tuple(
                (key, _freeze_json(value)) for key, value in data["params"]
            ),
            trace=tuple(int(index) for index in data["trace"]),
            reason=data["reason"],
            fingerprint=data["fingerprint"],
            script=tuple(
                (int(pid), str(role)) for pid, role in data.get("script", [])
            ),
            schedule=data.get("schedule", ""),
            source=data.get("source", ""),
        )


def entry_id_for(scenario: Scenario, fingerprint: str) -> str:
    """Deterministic short id of a violation class in a scenario."""
    digest = hashlib.blake2b(
        f"{scenario.label()}:{fingerprint}".encode(), digest_size=6
    )
    return digest.hexdigest()


def entry_from_shrunk(
    scenario: Scenario, shrunk: ShrunkViolation, source: str = ""
) -> CorpusEntry:
    """Package a shrunk violation as a corpus entry."""
    fingerprint = Violation(
        scenario=scenario.label(), reason=shrunk.reason, trace=shrunk.trace
    ).fingerprint()
    return CorpusEntry(
        entry_id=entry_id_for(scenario, fingerprint),
        scenario=scenario.name,
        params=scenario.params,
        trace=shrunk.trace,
        reason=shrunk.reason,
        fingerprint=fingerprint,
        script=tuple(shrunk.script),
        schedule=shrunk.original.schedule,
        source=source,
    )


def default_corpus_dir() -> Path:
    """The repository's committed ``corpus/`` when run from a source tree.

    Walks up from this file looking for the project root (marked by
    ``setup.py`` or ``.git``); falls back to ``./corpus`` for installed
    packages, where the caller should pass an explicit directory.
    """
    for parent in Path(__file__).resolve().parents:
        if (parent / "setup.py").exists() or (parent / ".git").exists():
            return parent / "corpus"
    return Path("corpus")


def save_entry(
    corpus_dir: Union[str, Path],
    entry: CorpusEntry,
    overwrite: bool = False,
) -> Tuple[Path, bool]:
    """Write ``entry`` into ``corpus_dir``; returns ``(path, written)``.

    An existing file for the same violation class is left untouched
    unless ``overwrite`` — the committed trace is the reviewed one, and
    keeping it stable avoids corpus churn across campaign runs.
    """
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / entry.file_name()
    if path.exists() and not overwrite:
        return path, False
    # Atomic write: a campaign interrupted mid-save must never leave a
    # truncated entry behind (load_corpus raises on malformed files,
    # which would fail the replay suite at collection time).
    staging = path.with_suffix(".json.tmp")
    staging.write_text(
        json.dumps(entry.to_json(), indent=2, sort_keys=True) + "\n"
    )
    os.replace(staging, path)
    return path, True


def load_corpus(corpus_dir: Union[str, Path]) -> List[CorpusEntry]:
    """Load every ``*.json`` entry of ``corpus_dir``, sorted by file name.

    A missing directory is an empty corpus; a malformed or
    wrong-version entry raises with the offending file named.
    """
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    entries: List[CorpusEntry] = []
    for path in sorted(corpus_dir.glob("*.json")):
        try:
            entries.append(CorpusEntry.from_json(json.loads(path.read_text())))
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise ConfigurationError(f"bad corpus entry {path}: {exc}") from exc
    return entries


@dataclass
class ReplayOutcome:
    """Result of replaying one corpus entry."""

    entry: CorpusEntry
    ok: bool
    violation: Optional[Violation] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


def replay_entry(entry: CorpusEntry, ctx=None) -> ReplayOutcome:
    """Replay ``entry``'s trace; the same violation class must reappear.

    The trace is forced through a :class:`repro.sim.TraceScheduler`
    (with the usual fair round-robin completion) against a fresh build
    of the entry's scenario. Three failure shapes are distinguished:
    the prefix no longer realizable, the run clean, or the violation
    drifted to a different class. Pass one :class:`repro.spec.CheckContext`
    as ``ctx`` when replaying a batch of entries, so the oracle layer's
    memo tables persist across the replays.
    """
    scenario = entry.scenario_spec()
    try:
        record = execute_trace(
            scenario,
            entry.trace,
            schedule_label=f"corpus:{entry.entry_id}",
            ctx=ctx,
        )
    except SchedulerError as exc:
        return ReplayOutcome(
            entry=entry, ok=False, detail=f"trace no longer realizable: {exc}"
        )
    if not record.completed:
        return ReplayOutcome(
            entry=entry,
            ok=False,
            detail=(
                f"replay exceeded the step limit after {record.steps} steps "
                "(non-termination, not a spec drift)"
            ),
        )
    if record.violation is None:
        return ReplayOutcome(
            entry=entry,
            ok=False,
            detail=(
                "trace no longer violates; expected "
                f"{entry.fingerprint!r} ({entry.reason})"
            ),
        )
    if record.violation.fingerprint() != entry.fingerprint:
        return ReplayOutcome(
            entry=entry,
            ok=False,
            violation=record.violation,
            detail=(
                f"violation drifted: expected {entry.fingerprint!r}, "
                f"got {record.violation.fingerprint()!r}"
            ),
        )
    return ReplayOutcome(entry=entry, ok=True, violation=record.violation)
