"""Differential conformance campaigns with a persistent violation corpus.

This subpackage is the verification backbone on top of
``repro.explore``: instead of exploring one hand-picked scenario, a
*campaign* runs a whole matrix — every ``repro.core`` implementation
family × scenario × engine — through the exploration engines, checks
each run differentially against the matching ``repro.spec`` sequential
specification, and compares the findings with what the paper proves for
that cell (Algorithms 1–3 clean; the naive strawman broken by the
flip-flop collusion; test-or-set violating at ``n = 3f`` and clean at
``n = 3f + 1``).

Every violation is auto-shrunk and persisted into a versioned on-disk
corpus (``corpus/*.json``) that ``tests/test_corpus_replay.py`` replays
as a pytest-parametrized regression suite, so a counterexample found
once can never silently regress.

Quickstart::

    from repro.campaign import default_matrix, run_campaign

    report = run_campaign(default_matrix(smoke=True), corpus_dir="corpus")
    print(report.summary())
    assert report.ok  # every cell matched the paper's expectation

The CLI front end is ``python -m repro.analysis campaign``.
"""

from repro.campaign.corpus import (
    CORPUS_VERSION,
    CorpusEntry,
    ReplayOutcome,
    default_corpus_dir,
    entry_from_shrunk,
    entry_id_for,
    load_corpus,
    replay_entry,
    save_entry,
)
from repro.campaign.matrix import (
    ENGINES,
    CampaignCell,
    CampaignReport,
    CellOutcome,
    canonicalize_violation,
    default_matrix,
    oracle_for,
    run_campaign,
    run_cell,
)


def __getattr__(name: str):
    # IMPLEMENTATIONS is registry-derived and computed on access (see
    # repro.campaign.matrix.__getattr__) — a static re-import here
    # would snapshot it and hide later registrations.
    if name == "IMPLEMENTATIONS":
        from repro.campaign import matrix

        return matrix.IMPLEMENTATIONS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CORPUS_VERSION",
    "CampaignCell",
    "CampaignReport",
    "CellOutcome",
    "CorpusEntry",
    "ENGINES",
    "IMPLEMENTATIONS",
    "ReplayOutcome",
    "canonicalize_violation",
    "default_corpus_dir",
    "default_matrix",
    "entry_from_shrunk",
    "entry_id_for",
    "load_corpus",
    "oracle_for",
    "replay_entry",
    "run_campaign",
    "run_cell",
    "save_entry",
]
