"""Socket-layer chaos: the PR 8 fault vocabulary applied to real TCP.

A :class:`ChaosProxy` fronts one destination node: every peer dials the
proxy's port instead of the node's, the handshake identifies the
sender, and each ``msg`` frame is then subjected to the *unchanged*
:class:`repro.faults.FaultPlan` — drop / dup / delay link rules, timed
group partitions, and crash windows — at frame granularity. Faulting at
the socket layer (rather than inside the node) keeps the node code
honest: a dropped frame really never arrives, a duplicated frame really
arrives twice, a delayed frame really overtakes its successors.

Determinism: each link rule draws from its own ``random.Random`` stream
seeded with ``(plan.seed, destination pid, rule index)``, so a rule's
decision sequence depends only on the frames *that rule* examined —
identical plans over identical per-link frame sequences make identical
decisions, per rule, mirroring the virtual-time layer's replayability
contract as closely as a real network allows.

Plan times (partition windows, crash windows) are interpreted as
**milliseconds since the cluster epoch** on the shared
:class:`ChaosClock`; all processes live on one host, so one monotonic
clock is genuinely global. Crash faults are suppressed here (nothing
reaches a crashed node, nothing a crashed node sends is forwarded) and
*enacted* by the cluster orchestrator, which stops the node process and
— for crash-recovery windows — restarts it through the node's recovery
protocol.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.net import wire


class ChaosClock:
    """Milliseconds since the cluster epoch — the plan's time axis."""

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> int:
        return int((time.monotonic() - self._epoch) * 1000)


class ChaosProxy:
    """A faulting TCP proxy in front of one node.

    Args:
        plan: The parsed fault plan (shared by every proxy of a run).
        dest: Pid of the node this proxy fronts.
        backend: ``(host, port)`` of the real node.
        clock: The run's shared :class:`ChaosClock`.
        host: Interface to listen on.
    """

    def __init__(
        self,
        plan: FaultPlan,
        dest: int,
        backend: Tuple[str, int],
        clock: ChaosClock,
        host: str = "127.0.0.1",
    ):
        self.plan = plan
        self.dest = dest
        self.backend = backend
        self.clock = clock
        self.host = host
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._rngs = [
            random.Random(f"chaos:{plan.seed}:{dest}:{index}")
            for index in range(len(plan.link_rules))
        ]
        # Metrics (key-compatible with FaultyNetwork where they overlap).
        self.forwarded = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.partitioned = 0
        self.suppressed_crash = 0
        #: (src, dst) -> suppression count, for the STALLED diagnosis.
        self.suppressed_links: Dict[Tuple[int, int], int] = {}
        self._delay_tasks: set = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._serve, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._delay_tasks):
            task.cancel()
        self._delay_tasks.clear()

    # ------------------------------------------------------------------
    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One inbound peer connection: handshake, then fault every frame."""
        backend_writer: Optional[asyncio.StreamWriter] = None
        write_lock = asyncio.Lock()
        try:
            hello = await wire.read_doc(reader)
            if hello is None or hello.get("t") != "hello":
                return
            sender = int(hello.get("pid", 0))
            backend_writer = await self._dial(hello)
            while True:
                doc = await wire.read_doc(reader)
                if doc is None:
                    return
                if doc.get("t") != "msg":
                    await self._forward(backend_writer, write_lock, doc)
                    continue
                await self._apply(sender, doc, backend_writer, write_lock)
        except (ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            # Absorbed so loop teardown doesn't report cancelled
            # connection handlers as callback errors.
            return
        finally:
            for stream in (writer, backend_writer):
                if stream is not None:
                    stream.close()

    async def _dial(self, hello_doc: Dict[str, Any]) -> asyncio.StreamWriter:
        host, port = self.backend
        _reader, backend_writer = await asyncio.open_connection(host, port)
        backend_writer.write(wire.encode(hello_doc))
        await backend_writer.drain()
        return backend_writer

    async def _forward(
        self,
        backend_writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        doc: Dict[str, Any],
    ) -> None:
        async with lock:
            backend_writer.write(wire.encode(doc))
            await backend_writer.drain()

    async def _apply(
        self,
        sender: int,
        doc: Dict[str, Any],
        backend_writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Run one protocol frame through the plan; forward the survivors."""
        now = self.clock.now()
        if self.plan.crashed(sender, now) or self.plan.crashed(self.dest, now):
            self.suppressed_crash += 1
            self._suppress(sender)
            return
        if self.plan.partitioned(sender, self.dest, now):
            self.partitioned += 1
            self._suppress(sender)
            return
        copies = 1
        delay_ms = 0
        for index, rule in enumerate(self.plan.link_rules):
            if not rule.matches(sender, self.dest):
                continue
            draw = self._rngs[index].random()
            if rule.kind == "drop":
                if draw < rule.prob:
                    self.dropped += 1
                    self._suppress(sender)
                    return
            elif rule.kind == "dup":
                if draw < rule.prob:
                    self.duplicated += 1
                    copies += 1
            elif rule.kind == "delay":
                if draw < rule.prob:
                    self.delayed += 1
                    delay_ms += rule.extra
        for _ in range(copies):
            if delay_ms:
                task = asyncio.ensure_future(
                    self._deliver_late(backend_writer, lock, doc, delay_ms)
                )
                self._delay_tasks.add(task)
                task.add_done_callback(self._delay_tasks.discard)
            else:
                await self._forward(backend_writer, lock, doc)
                self.forwarded += 1

    async def _deliver_late(
        self,
        backend_writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        doc: Dict[str, Any],
        delay_ms: int,
    ) -> None:
        await asyncio.sleep(delay_ms / 1000.0)
        try:
            await self._forward(backend_writer, lock, doc)
            self.forwarded += 1
        except (ConnectionError, OSError):
            pass

    def _suppress(self, sender: int) -> None:
        key = (sender, self.dest)
        self.suppressed_links[key] = self.suppressed_links.get(key, 0) + 1

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, int]:
        return {
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "partitioned": self.partitioned,
            "suppressed_crash": self.suppressed_crash,
        }


def describe_suppression(
    plan: FaultPlan, proxies: Dict[int, ChaosProxy], now: int
) -> str:
    """One-line cluster-wide suppression summary (the STALLED diagnosis).

    Same shape as :meth:`repro.faults.FaultyNetwork.describe_suppression`
    — ``plan[...] down=... cut=src->dst:count`` — aggregated over every
    proxy so the diagnosis names the starved links regardless of which
    destination they starve.
    """
    parts = [f"plan[{plan.describe()}]"]
    crashed = plan.crashed_pids(now)
    if crashed:
        parts.append("down=" + ",".join(f"p{pid}" for pid in crashed))
    links: Dict[Tuple[int, int], int] = {}
    for proxy in proxies.values():
        for key, count in proxy.suppressed_links.items():
            links[key] = links.get(key, 0) + count
    if links:
        top = sorted(links.items(), key=lambda item: -item[1])[:4]
        parts.append(
            "cut=" + ",".join(f"{src}->{dst}:{count}" for (src, dst), count in top)
        )
    return " ".join(parts)
