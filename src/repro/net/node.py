"""One live cluster process: replica, client API, and TCP server.

This is the wall-clock port of :class:`repro.mp.RegisterEmulation` — the
same echo-amplified quorum protocol ([11]-style), the same message
grammar (``WRITE`` / ``ECHO`` / ``ACK`` / ``READ`` / ``VALUE`` /
``PULL`` / ``PULL-ACK``), running over real sockets instead of the
cooperative scheduler:

* Every node is a replica for every emulated register, holding the
  highest accepted ``(seq, value)`` pair; adoption requires the
  register's true writer or ``f + 1`` matching echoes.
* ``write``: bump the sequence number, self-adopt, broadcast ``WRITE``,
  wait for ``n - f`` ``ACK``\\ s.
* ``read``: broadcast ``READ``, wait for a pair confirmed by ``f + 1``
  identical ``VALUE`` reports, then — by default, unlike the
  virtual-time scenarios — run the [11] write-back round (``PULL`` until
  ``n - f`` replicas hold at least the selected sequence number). The
  live load generator runs hundreds of genuinely concurrent clients, so
  the new/old-inversion window regular semantics leave open *will* be
  hit; write-back closes it, and the online oracle checks full
  linearizability.
* ``transfer`` / ``balance``: the asset-transfer object derived from
  one append-only ledger register per account (``led:P``, written only
  by its owner): ``balance(a) = initial + credits(a) - debits(a)`` over
  quorum-read ledgers, transfers solvency-checked under a per-owner
  lock. Debits depend on the credits that funded them, so per-register
  regular+write-back semantics make the derived object linearizable —
  which is exactly what the sampled-window oracle verifies live.

Blocking waits are paced: a waiting operation re-broadcasts its query
on an exponentially growing interval (capped at 16x), so an
unsatisfiable wait backs off instead of flooding — the progress monitor,
not a flood, is what turns it into a verdict.

Crash faults: :meth:`stop` closes the server and drops all connection
state (frames in flight are genuinely lost); :meth:`restart` models a
*lose-state* restart — protocol state is reset and rebuilt by a
recovery round that collects ``VALUE`` reports from ``n - f - 1``
*other* replicas per register and adopts the newest (with no Byzantine
processes in the live runtime, ``n - f - 1 > f`` reporters always
include one that saw every completed write). Until recovery finishes
the node answers no ``READ``\\ s — silence is indistinguishable from
slowness, so rejoining is safe; channel sequence counters survive the
restart so the retransmit layer's dedup stays sound.

Processes trust the connection handshake to identify the sender — the
authenticated-channels assumption, discharged on localhost. The live
runtime injects crash and network faults, not Byzantine replicas.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.net import wire
from repro.net.channels import WallClockChannels

#: How long a peer-writer backs off after a failed dial/send.
_RECONNECT_PAUSE = 0.02


class NetNode:
    """One process of the live cluster.

    Args:
        pid: This node's pid (``1..n``).
        n: Cluster size.
        f: Fault bound (quorums are ``n - f``, confirmations ``f + 1``).
        registers: ``name -> (writer pid, initial value)`` for every
            emulated register (identical on every node).
        history: Optional :class:`repro.net.oracle.LiveHistory`; client
            operations record invocation/response events into it.
        channels: Optional :class:`WallClockChannels` — frame all
            protocol traffic with ACK + dedup + retransmission.
        accounts: Account pids of the asset-transfer object (each must
            have a ``led:P`` ledger register), or ``None``.
        initial_balance: Starting balance of every account.
        requery: Base pacing interval (seconds) for blocking waits.
        host: Interface to serve on.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        registers: Dict[str, Tuple[int, Any]],
        history: Optional[Any] = None,
        channels: Optional[WallClockChannels] = None,
        accounts: Optional[Tuple[int, ...]] = None,
        initial_balance: int = 0,
        requery: float = 0.05,
        host: str = "127.0.0.1",
    ):
        if not 1 <= pid <= n:
            raise ConfigurationError(f"pid {pid} outside 1..{n}")
        for name, (writer, _initial) in registers.items():
            if not 1 <= writer <= n:
                raise ConfigurationError(f"register {name!r} writer {writer} outside 1..{n}")
        if accounts:
            for account in accounts:
                if f"led:{account}" not in registers:
                    raise ConfigurationError(
                        f"account {account} has no ledger register led:{account}"
                    )
        self.pid = pid
        self.n = n
        self.f = f
        self.registers = dict(registers)
        self.history = history
        self.channels = channels
        self.accounts = tuple(accounts) if accounts else ()
        self.initial_balance = initial_balance
        self.requery = requery
        self.host = host
        self.port: Optional[int] = None
        self._routes: Dict[int, Tuple[str, int]] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._serving = False
        self._tasks: List[asyncio.Task] = []
        self._out: Dict[int, asyncio.Queue] = {}
        self._connections: Set[asyncio.StreamWriter] = set()
        self._cond = asyncio.Condition()
        self._notify_pending = False
        self._recovered = asyncio.Event()
        self._recovered.set()
        self._write_locks = {name: asyncio.Lock() for name in registers}
        self._transfer_lock = asyncio.Lock()
        #: Protocol frames delivered to this node (post-dedup traffic
        #: included; duplicates are dropped before this counts).
        self.delivered = 0
        self._reset_protocol_state()

    def _reset_protocol_state(self) -> None:
        self.accepted: Dict[str, Tuple[int, Any]] = {
            name: (0, wire.freeze(initial))
            for name, (_writer, initial) in self.registers.items()
        }
        self.echo_votes: Dict[Tuple[str, int, Any], Set[int]] = {}
        self.echoed: Set[Tuple[str, int, Any]] = set()
        self.acks: Dict[Tuple[str, int], Set[int]] = {}
        self.value_reports: Dict[Tuple[str, int], Dict[int, Tuple[int, Any]]] = {}
        self._write_seq: Dict[str, int] = {name: 0 for name in self.registers}
        self._read_id = 0
        #: Monotone count of protocol-state changes (adoptions, fresh
        #: votes/acks, changed reports) — the progress signal the
        #: wall-clock monitor watches. Retransmissions and duplicates
        #: do not move it.
        self.version = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the server (on a fresh port, or the old one on restart)."""
        self._server = await asyncio.start_server(
            self._accept, self.host, self.port or 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._serving = True
        if self.channels is not None:
            self._tasks.append(asyncio.ensure_future(self._retransmit_pump()))

    def set_routes(self, routes: Dict[int, Tuple[str, int]]) -> None:
        """Where to dial each peer (a chaos proxy front, or the node itself)."""
        self._routes = dict(routes)

    async def stop(self) -> None:
        """Crash-stop: close the server, drop every connection and queue."""
        self._serving = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        self._out.clear()

    async def restart(self) -> None:
        """Lose-state restart: reset, rejoin, recover before serving reads.

        The channel layer's sequence counters survive (so peers' dedup
        state stays consistent), but its pending frames do not — they
        were volatile.
        """
        self._reset_protocol_state()
        if self.channels is not None:
            self.channels._pending.clear()
        self._recovered.clear()
        await self.start()
        await self._recover()
        self._recovered.set()
        self._notify()

    async def _recover(self) -> None:
        """Adopt, per register, the newest pair among n-f-1 other replicas."""
        for name in self.registers:
            self._read_id += 1
            rid = self._read_id
            reports = self.value_reports.setdefault((name, rid), {})
            query = ("READ", name, rid)
            self._broadcast(query)

            def others() -> List[Tuple[int, Any]]:
                return [pair for sender, pair in reports.items() if sender != self.pid]

            await self._paced_wait(
                lambda: len(others()) >= self.n - self.f - 1,
                lambda: self._broadcast(query),
            )
            best = max(others(), key=lambda pair: pair[0])
            if best[0] > self.accepted[name][0]:
                self.accepted[name] = best
                self.version += 1
            writer, _initial = self.registers[name]
            if writer == self.pid:
                self._write_seq[name] = max(self._write_seq[name], best[0])

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _send(self, dst: int, payload: Any) -> None:
        if dst == self.pid:
            self._deliver(self.pid, payload, framed=False)
            return
        if self.channels is not None:
            payload = self.channels.frame(dst, payload, time.monotonic())
        self._enqueue(dst, payload)

    def _send_raw(self, dst: int, payload: Any) -> None:
        """Send outside the channel layer (channel ACKs must not recurse)."""
        if dst == self.pid:
            return
        self._enqueue(dst, payload)

    def _broadcast(self, payload: Any) -> None:
        for dst in range(1, self.n + 1):
            self._send(dst, payload)

    def _enqueue(self, dst: int, payload: Any) -> None:
        if not self._serving:
            return
        queue = self._out.get(dst)
        if queue is None:
            queue = self._out[dst] = asyncio.Queue()
            self._tasks.append(asyncio.ensure_future(self._peer_writer(dst, queue)))
        queue.put_nowait(wire.msg(payload))

    async def _peer_writer(self, dst: int, queue: asyncio.Queue) -> None:
        """Drain one peer's outbound queue; drop frames while the link is down.

        Dropping (instead of blocking on reconnection) gives bare TCP
        the lossy-link semantics a crashed peer implies; the channel
        layer's retransmission is what rebuilds reliability on top.
        """
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                doc = await queue.get()
                try:
                    if writer is None:
                        route = self._routes.get(dst)
                        if route is None:
                            continue
                        _reader, writer = await asyncio.open_connection(*route)
                        writer.write(wire.encode(wire.hello(self.pid)))
                    writer.write(wire.encode(doc))
                    await writer.drain()
                except (ConnectionError, OSError):
                    if writer is not None:
                        writer.close()
                        writer = None
                    await asyncio.sleep(_RECONNECT_PAUSE)
        finally:
            if writer is not None:
                writer.close()

    async def _retransmit_pump(self) -> None:
        assert self.channels is not None
        while True:
            await asyncio.sleep(self.channels.base_timeout / 2)
            for dst, payload in self.channels.due_retransmits(time.monotonic()):
                self._enqueue(dst, payload)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            hello = await wire.read_doc(reader)
            if hello is None or hello.get("t") != "hello":
                return
            sender = int(hello.get("pid", 0))
            if sender >= 1:
                await self._peer_session(sender, reader)
            else:
                await self._client_session(reader, writer)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Absorbed, not re-raised: connection-handler tasks are
            # cancelled wholesale at loop teardown, and a cancelled
            # handler would be reported as a spurious callback error.
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _peer_session(self, sender: int, reader: asyncio.StreamReader) -> None:
        while True:
            doc = await wire.read_doc(reader)
            if doc is None:
                return
            if doc.get("t") == "msg":
                self._deliver(sender, wire.freeze(doc["m"]), framed=True)

    def _deliver(self, sender: int, payload: Any, framed: bool) -> None:
        if framed and self.channels is not None:
            inner, acks = self.channels.on_receive(sender, payload)
            for ack in acks:
                self._send_raw(sender, ack)
            if inner is None:
                return
            payload = inner
        self.delivered += 1
        self._handle(sender, payload)
        self._notify()

    async def _client_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: Set[asyncio.Task] = set()
        try:
            while True:
                doc = await wire.read_doc(reader)
                if doc is None:
                    return
                if doc.get("t") != "req":
                    continue
                task = asyncio.ensure_future(
                    self._serve_request(writer, write_lock, doc)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            for task in pending:
                task.cancel()

    async def _serve_request(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        doc: Dict[str, Any],
    ) -> None:
        op = doc.get("op")
        args = wire.freeze(doc.get("args", ()))
        try:
            if op == "read":
                value = await self.read(args[0])
            elif op == "write":
                value = await self.write(args[0], args[1])
            elif op == "transfer":
                value = await self.transfer(args[0], args[1])
            elif op == "balance":
                value = await self.balance(args[0])
            elif op == "info":
                value = {
                    "pid": self.pid,
                    "n": self.n,
                    "f": self.f,
                    "registers": sorted(self.registers),
                    "accounts": list(self.accounts),
                }
            else:
                raise ConfigurationError(f"unknown client op {op!r}")
            response = {"t": "res", "id": doc.get("id"), "ok": True, "value": value}
        except Exception as exc:  # surfaced to the client, not swallowed
            response = {
                "t": "res",
                "id": doc.get("id"),
                "ok": False,
                "value": f"{type(exc).__name__}: {exc}",
            }
        try:
            async with write_lock:
                writer.write(wire.encode(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Replica protocol (the virtual-time _handle, ported verbatim)
    # ------------------------------------------------------------------
    def _handle(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, tuple) or not payload:
            return
        kind = payload[0]
        if kind == "WRITE" and len(payload) == 4:
            _k, name, seq, value = payload
            entry = self.registers.get(name)
            if (
                entry is not None
                and sender == entry[0]
                and isinstance(seq, int)
                and not isinstance(seq, bool)
                and seq > 0
            ):
                self._maybe_adopt(name, seq, value)
                key = (name, seq, value)
                if key not in self.echoed:
                    self.echoed.add(key)
                    self._broadcast(("ECHO", name, seq, value))
                self._send(entry[0], ("ACK", name, seq))
        elif kind == "ECHO" and len(payload) == 4:
            _k, name, seq, value = payload
            if (
                name in self.registers
                and isinstance(seq, int)
                and not isinstance(seq, bool)
                and seq > 0
            ):
                key = (name, seq, value)
                votes = self.echo_votes.setdefault(key, set())
                if sender not in votes:
                    votes.add(sender)
                    self.version += 1
                if len(votes) >= self.f + 1:
                    self._maybe_adopt(name, seq, value)
                    if key not in self.echoed:
                        self.echoed.add(key)
                        self._broadcast(("ECHO", name, seq, value))
        elif kind == "READ" and len(payload) == 3:
            _k, name, rid = payload
            # A recovering replica stays silent: its reset state could
            # otherwise confirm a stale pair for some reader.
            if name in self.registers and self._recovered.is_set():
                seq, value = self.accepted[name]
                self._send(sender, ("VALUE", name, rid, seq, value))
        elif kind == "PULL" and len(payload) == 5:
            _k, name, seq, value, wb_id = payload
            if (
                name in self.registers
                and isinstance(seq, int)
                and not isinstance(seq, bool)
                and isinstance(wb_id, int)
            ):
                if self.accepted[name][0] >= seq:
                    self._send(sender, ("PULL-ACK", name, wb_id))
        elif kind == "PULL-ACK" and len(payload) == 3:
            _k, name, wb_id = payload
            if name in self.registers and isinstance(wb_id, int):
                acks = self.acks.setdefault((name, -wb_id), set())
                if sender not in acks:
                    acks.add(sender)
                    self.version += 1
        elif kind == "ACK" and len(payload) == 3:
            _k, name, seq = payload
            if name in self.registers and isinstance(seq, int):
                acks = self.acks.setdefault((name, seq), set())
                if sender not in acks:
                    acks.add(sender)
                    self.version += 1
        elif kind == "VALUE" and len(payload) == 5:
            _k, name, rid, seq, value = payload
            if (
                name in self.registers
                and isinstance(rid, int)
                and isinstance(seq, int)
                and not isinstance(seq, bool)
            ):
                reports = self.value_reports.setdefault((name, rid), {})
                if reports.get(sender) != (seq, value):
                    reports[sender] = (seq, value)
                    self.version += 1

    def _maybe_adopt(self, name: str, seq: int, value: Any) -> None:
        if seq > self.accepted[name][0]:
            self.accepted[name] = (seq, value)
            self.version += 1

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def _notify(self) -> None:
        if self._notify_pending:
            return
        self._notify_pending = True
        asyncio.ensure_future(self._do_notify())

    async def _do_notify(self) -> None:
        self._notify_pending = False
        async with self._cond:
            self._cond.notify_all()

    async def _paced_wait(self, predicate, rebroadcast) -> None:
        """Wait for ``predicate``; re-issue the query on a backoff pacing."""
        interval = self.requery
        deadline = time.monotonic() + interval
        while not predicate():
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                rebroadcast()
                interval = min(interval * 2, self.requery * 16)
                deadline = time.monotonic() + interval
                continue
            async with self._cond:
                try:
                    await asyncio.wait_for(self._cond.wait(), timeout)
                except asyncio.TimeoutError:
                    pass

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def _invoke(self, obj: str, op: str, args: Tuple[Any, ...]) -> Optional[int]:
        if self.history is None:
            return None
        return self.history.invoke(self.pid, obj, op, args)

    def _respond(self, op_id: Optional[int], result: Any) -> None:
        if op_id is not None and self.history is not None:
            self.history.respond(op_id, result)

    async def write(self, name: str, value: Any, record: bool = True) -> str:
        """Emulated ``write``; returns once ``n - f`` replicas acked."""
        entry = self.registers.get(name)
        if entry is None:
            raise ConfigurationError(f"unknown emulated register {name!r}")
        if entry[0] != self.pid:
            raise ConfigurationError(
                f"p{self.pid} is not the writer of emulated register {name!r}"
            )
        async with self._write_locks[name]:
            op_id = self._invoke(name, "write", (value,)) if record else None
            self._write_seq[name] += 1
            seq = self._write_seq[name]
            value = wire.freeze(value)
            self._maybe_adopt(name, seq, value)
            self.acks.setdefault((name, seq), set()).add(self.pid)
            message = ("WRITE", name, seq, value)
            self._broadcast(message)
            # The ack set is looked up on every check (never captured):
            # a crash-restart mid-wait resets the protocol dicts, and the
            # paced rebroadcast then repopulates the *new* ones.
            await self._paced_wait(
                lambda: len(self.acks.get((name, seq), ())) >= self.n - self.f,
                lambda: self._broadcast(message),
            )
            # A restart mid-wait may have recovered a lower write
            # counter than this in-flight sequence number; completing
            # below it would let the next write collide.
            self._write_seq[name] = max(self._write_seq[name], seq)
            self._respond(op_id, "done")
        return "done"

    async def read(
        self, name: str, record: bool = True, write_back: bool = True
    ) -> Any:
        """Emulated ``read``; a pair confirmed by ``f + 1``, written back."""
        if name not in self.registers:
            raise ConfigurationError(f"unknown emulated register {name!r}")
        op_id = self._invoke(name, "read", ()) if record else None
        value = await self._read_inner(name, write_back=write_back)
        self._respond(op_id, value)
        return value

    async def _read_inner(self, name: str, write_back: bool = True) -> Any:
        self._read_id += 1
        rid = self._read_id
        self.value_reports.setdefault((name, rid), {})[self.pid] = self.accepted[name]
        query = ("READ", name, rid)
        self._broadcast(query)
        confirmed: Optional[Tuple[int, Any]] = None

        def check() -> bool:
            nonlocal confirmed
            # Re-looked-up (not captured) so the wait survives a
            # crash-restart resetting the protocol dicts mid-flight.
            reports = self.value_reports.setdefault((name, rid), {})
            own = reports.get(self.pid, (0, None))
            if self.accepted[name][0] > own[0]:
                reports[self.pid] = self.accepted[name]
            confirmed = self._best_confirmed(reports)
            return confirmed is not None

        await self._paced_wait(check, lambda: self._broadcast(query))
        seq, value = confirmed
        if write_back and seq > 0:
            await self._write_back(name, seq, value)
        return value

    async def _write_back(self, name: str, seq: int, value: Any) -> None:
        self._read_id += 1
        wb_id = self._read_id
        self.acks.setdefault((name, -wb_id), set()).add(self.pid)
        pull = ("PULL", name, seq, value, wb_id)
        self._broadcast(pull)
        await self._paced_wait(
            lambda: len(self.acks.get((name, -wb_id), ())) >= self.n - self.f,
            lambda: self._broadcast(pull),
        )

    def _best_confirmed(
        self, reports: Dict[int, Tuple[int, Any]]
    ) -> Optional[Tuple[int, Any]]:
        tally: Dict[Tuple[int, Any], int] = {}
        for pair in reports.values():
            tally[pair] = tally.get(pair, 0) + 1
        confirmed = [pair for pair, count in tally.items() if count >= self.f + 1]
        if not confirmed:
            return None
        return max(confirmed, key=lambda pair: pair[0])

    # ------------------------------------------------------------------
    # Asset transfer over ledger registers
    # ------------------------------------------------------------------
    @staticmethod
    def _ledger(account: int) -> str:
        return f"led:{account}"

    def _require_account(self, account: Any) -> None:
        if account not in self.accounts:
            raise ConfigurationError(
                f"unknown account {account!r}; tracked: {self.accounts}"
            )

    async def _ledgers(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        values = await asyncio.gather(
            *[
                self._read_inner(self._ledger(account), write_back=True)
                for account in self.accounts
            ]
        )
        return dict(zip(self.accounts, values))

    def _balance_from(
        self, ledgers: Dict[int, Tuple[Tuple[int, int], ...]], account: int
    ) -> int:
        balance = self.initial_balance
        for owner, entries in ledgers.items():
            for to, amount in entries:
                if owner == account:
                    balance -= amount
                if to == account:
                    balance += amount
        return balance

    async def transfer(self, to: int, amount: int, record: bool = True) -> str:
        """Move ``amount`` from this node's account; ``"ok"``/``"rejected"``."""
        if not self.accounts:
            raise ConfigurationError("no asset-transfer object configured")
        self._require_account(self.pid)
        self._require_account(to)
        if not isinstance(amount, int) or isinstance(amount, bool) or amount <= 0:
            raise ConfigurationError(f"bad transfer amount {amount!r}")
        async with self._transfer_lock:
            op_id = (
                self._invoke("assets", "transfer", (self.pid, to, amount))
                if record
                else None
            )
            ledgers = await self._ledgers()
            if self._balance_from(ledgers, self.pid) < amount:
                result = "rejected"
            else:
                updated = ledgers[self.pid] + ((to, amount),)
                await self.write(self._ledger(self.pid), updated, record=False)
                result = "ok"
            self._respond(op_id, result)
        return result

    async def balance(self, account: int, record: bool = True) -> int:
        """The account's balance derived from quorum-read ledgers."""
        if not self.accounts:
            raise ConfigurationError("no asset-transfer object configured")
        self._require_account(account)
        op_id = self._invoke("assets", "balance", (account,)) if record else None
        ledgers = await self._ledgers()
        balance = self._balance_from(ledgers, account)
        self._respond(op_id, balance)
        return balance

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "pid": self.pid,
            "delivered": self.delivered,
            "version": self.version,
        }
        if self.channels is not None:
            out["channels"] = self.channels.metrics()
        return out
