"""Wall-clock stall-to-verdict monitoring for live clusters.

The virtual-time :class:`repro.faults.ProgressMonitor` samples progress
signals from inside a drive loop's goal predicate; a live cluster has
no such loop, so this port runs as an asyncio task that samples on a
poll interval and flips an :class:`asyncio.Event` instead of raising —
the orchestrator races the load against that event and converts it into
the same first-class ``STALLED`` verdict, with the same diagnosis shape
(pending operations plus what the fault plan is suppressing).

The window-vs-backoff footgun is validated here exactly as in the
virtual-time layer: a window that does not exceed every attached
retransmit channel's capped backoff would report phantom stalls during
legitimate retransmit gaps, so construction rejects it loudly.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class WallClockProgressMonitor:
    """Flag a stall once progress signals stop moving for ``window`` seconds.

    Args:
        signals: Zero-argument callable returning a comparable tuple of
            progress counters; any change resets the window. Counters
            must track *useful* events (responses, protocol-state
            adoptions) — retransmission sends and deduped duplicates
            are not progress.
        window: Seconds without a signal change before the verdict.
        poll: Sampling interval (default ``window / 20``, floored at
            10ms).
        describe_pending: Optional callable summarizing the operations
            still in flight (folded into the diagnosis).
        describe_suppression: Optional callable explaining what the
            chaos layer is cutting (the proxies' aggregate view).
        channels: Retransmit channel layers attached to the cluster;
            the window must exceed every one's ``max_backoff`` or
            construction raises :class:`ConfigurationError`.
    """

    def __init__(
        self,
        signals: Callable[[], Tuple],
        window: float = 2.0,
        poll: Optional[float] = None,
        describe_pending: Optional[Callable[[], str]] = None,
        describe_suppression: Optional[Callable[[], str]] = None,
        channels: Sequence[Any] = (),
    ):
        if window <= 0:
            raise ConfigurationError(f"stall window must be > 0, got {window}")
        for channel in channels:
            if window <= channel.max_backoff:
                raise ConfigurationError(
                    f"stall window {window}s must exceed the retransmit "
                    f"layer's capped backoff ({channel.max_backoff}s): a "
                    f"legitimate retransmit gap would read as a stall"
                )
        self.window = window
        self.poll = max(window / 20.0, 0.01) if poll is None else poll
        self._signals = signals
        self._describe_pending = describe_pending
        self._describe_suppression = describe_suppression
        self._task: Optional[asyncio.Task] = None
        #: Set once the stall verdict fires; the diagnosis is in
        #: :attr:`stalled`.
        self.stalled_event = asyncio.Event()
        self.stalled: Optional[str] = None

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Cancel the sampling task."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        last = self._signals()
        last_change = time.monotonic()
        while True:
            await asyncio.sleep(self.poll)
            now = time.monotonic()
            current = self._signals()
            if current != last:
                last = current
                last_change = now
                continue
            if now - last_change >= self.window:
                self.stalled = self._diagnose()
                self.stalled_event.set()
                return

    def _diagnose(self) -> str:
        parts = [f"STALLED: no progress for {self.window:g}s (wall clock)"]
        if self._describe_pending is not None:
            parts.append(f"pending: {self._describe_pending()}")
        if self._describe_suppression is not None:
            parts.append(self._describe_suppression())
        return "; ".join(parts)
