"""Live-network runtime: asyncio socket clusters with chaos injection.

``repro.net`` deploys the [11]-style SWMR quorum emulation (the same
protocol :mod:`repro.mp.swmr_emulation` model-checks in virtual time) as
an n-process cluster on localhost TCP sockets, and rebuilds the whole
PR 8 robustness story over wall clocks:

* :mod:`repro.net.wire` — length-prefixed JSON framing shared by nodes,
  chaos proxies, and remote clients.
* :mod:`repro.net.chaos` — a genuine socket-layer chaos proxy applying
  the unchanged :class:`repro.faults.FaultPlan` vocabulary (drop / dup /
  delay rules, timed group partitions, crash-stop with optional
  restart-and-recover) with seeded determinism per rule.
* :mod:`repro.net.channels` — the wall-clock port of
  :class:`repro.faults.RetransmitChannels`: ACK + seqno dedup,
  exponential backoff with seeded jitter, bounded retries surfaced as
  metrics.
* :mod:`repro.net.monitor` — the wall-clock
  :class:`repro.faults.ProgressMonitor`: a hung cluster becomes a
  first-class ``STALLED`` verdict with a waiting-on/suppression
  diagnosis instead of a hang.
* :mod:`repro.net.node` — one cluster process: replica protocol
  (WRITE/ECHO/ACK/READ/VALUE/PULL), client operations (read / write /
  transfer / balance), crash-restart recovery, and a TCP server that
  also speaks the remote-client request protocol.
* :mod:`repro.net.loadgen` — hundreds of concurrent clients driving
  read/write/transfer mixes in barrier-separated rounds, with latency
  and throughput percentiles.
* :mod:`repro.net.oracle` — the online oracle: each round's operations
  form a self-contained window in the existing ``History`` record
  format, checked by the unmodified Wing–Gong search through
  :class:`repro.spec.CheckContext`, and serialized as corpus-compatible
  JSON evidence the offline path re-checks byte-identically.
* :mod:`repro.net.cluster` — orchestration: boot, chaos, load, verdict
  (``CLEAN`` / ``VIOLATING`` / ``STALLED``).

The CLI lives in :mod:`repro.analysis.net`
(``python -m repro.analysis net --serve/--load/--chaos/--check``).
"""

from repro.net.channels import WallClockChannels
from repro.net.chaos import ChaosClock, ChaosProxy
from repro.net.cluster import (
    CLEAN,
    STALLED,
    VIOLATING,
    LiveCluster,
    LiveProfile,
    LiveRunReport,
    run_live,
)
from repro.net.loadgen import LoadGenerator, LoadStats
from repro.net.monitor import WallClockProgressMonitor
from repro.net.node import NetNode
from repro.net.oracle import (
    EVIDENCE_KIND,
    EVIDENCE_VERSION,
    check_evidence,
    evidence_bytes,
    window_evidence,
)

__all__ = [
    "CLEAN",
    "STALLED",
    "VIOLATING",
    "ChaosClock",
    "ChaosProxy",
    "EVIDENCE_KIND",
    "EVIDENCE_VERSION",
    "LiveCluster",
    "LiveProfile",
    "LiveRunReport",
    "LoadGenerator",
    "LoadStats",
    "NetNode",
    "WallClockChannels",
    "WallClockProgressMonitor",
    "check_evidence",
    "evidence_bytes",
    "run_live",
    "window_evidence",
]
