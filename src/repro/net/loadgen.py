"""Round-based load generation for live clusters.

Hundreds of concurrent clients, each pinned to a home node, drive a
weighted operation mix (register ``read``/``write``, asset
``transfer``/``balance``) in rounds. ``asyncio.gather`` over the round's
client coroutines is the barrier: a round ends only when *every* client
finished its quota, which is what makes the per-round history windows
self-contained for the online oracle (no operation spans a barrier).

Per-client determinism: client *c* draws from
``random.Random(f"load:{seed}:{c}")``, so the op sequence each client
*attempts* is a pure function of ``(seed, c)`` — wall-clock
interleaving stays real (that is the point of the live runtime), but
the workload itself replays.

The generator also owns the latency/throughput bookkeeping (per-kind
p50/p90/p99/max plus ops/s) and a ``describe_pending`` view of in-flight
operations — the half of the STALLED diagnosis that names *what* is
stuck, complementing the chaos layer's account of *why*.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default operation mix (weights, not probabilities; renormalized).
DEFAULT_MIX: Dict[str, float] = {"read": 5.0, "write": 3.0}
#: Default mix when the cluster has an asset-transfer object.
DEFAULT_ASSET_MIX: Dict[str, float] = {
    "read": 4.0,
    "write": 2.0,
    "transfer": 2.0,
    "balance": 1.0,
}

_KINDS = ("read", "write", "transfer", "balance")


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class LoadStats:
    """Latency and throughput counters for one load run."""

    def __init__(self) -> None:
        self.latencies: Dict[str, List[float]] = {kind: [] for kind in _KINDS}
        self.started = 0
        self.finished = 0
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    def begin(self) -> None:
        if self._t0 is None:
            self._t0 = time.monotonic()

    def end(self) -> None:
        self._t1 = time.monotonic()

    def observe(self, kind: str, seconds: float) -> None:
        self.latencies[kind].append(seconds)
        self.finished += 1

    @property
    def duration(self) -> float:
        if self._t0 is None:
            return 0.0
        return (self._t1 or time.monotonic()) - self._t0

    def summary(self) -> Dict[str, Any]:
        """Per-kind latency percentiles (ms) plus aggregate throughput."""
        out: Dict[str, Any] = {
            "ops": self.finished,
            "duration_s": round(self.duration, 4),
            "ops_per_s": (
                round(self.finished / self.duration, 2) if self.duration else 0.0
            ),
            "kinds": {},
        }
        for kind, values in self.latencies.items():
            if not values:
                continue
            ordered = sorted(values)
            out["kinds"][kind] = {
                "count": len(ordered),
                "p50_ms": round(_percentile(ordered, 0.50) * 1000, 3),
                "p90_ms": round(_percentile(ordered, 0.90) * 1000, 3),
                "p99_ms": round(_percentile(ordered, 0.99) * 1000, 3),
                "max_ms": round(ordered[-1] * 1000, 3),
            }
        return out


class LoadGenerator:
    """Drive a weighted op mix through the cluster's nodes, in rounds.

    Args:
        nodes: The cluster's :class:`~repro.net.node.NetNode` list
            (client *c*'s home node is ``nodes[c % len(nodes)]``).
        registers: Register names clients read; node *P*'s clients
            write only the registers *P* owns (SWMR discipline).
        clients: Concurrent client count.
        ops_per_client: Operations per client per round.
        mix: ``kind -> weight``; kinds without a backing object are
            rejected loudly.
        seed: Workload seed.
        amount_max: Transfers draw amounts from ``1..amount_max``.
    """

    def __init__(
        self,
        nodes: Sequence[Any],
        registers: Sequence[str],
        clients: int = 100,
        ops_per_client: int = 5,
        mix: Optional[Dict[str, float]] = None,
        seed: int = 0,
        amount_max: int = 3,
    ):
        if not nodes:
            raise ConfigurationError("load generator needs at least one node")
        if clients < 1 or ops_per_client < 1:
            raise ConfigurationError(
                f"bad load shape: clients={clients}, ops_per_client={ops_per_client}"
            )
        self.nodes = list(nodes)
        self.registers = list(registers)
        accounts = self.nodes[0].accounts
        if mix is None:
            mix = DEFAULT_ASSET_MIX if accounts else DEFAULT_MIX
        for kind, weight in mix.items():
            if kind not in _KINDS:
                raise ConfigurationError(f"unknown op kind {kind!r}")
            if weight < 0:
                raise ConfigurationError(f"negative weight for {kind!r}")
            if kind in ("transfer", "balance") and not accounts:
                raise ConfigurationError(
                    f"mix includes {kind!r} but the cluster has no asset object"
                )
            if kind in ("read", "write") and not self.registers:
                raise ConfigurationError(
                    f"mix includes {kind!r} but no registers were declared"
                )
        self.mix = {kind: weight for kind, weight in mix.items() if weight > 0}
        if not self.mix:
            raise ConfigurationError("operation mix has no positive weights")
        self.clients = clients
        self.ops_per_client = ops_per_client
        self.seed = seed
        self.amount_max = amount_max
        self.stats = LoadStats()
        self._rngs = [
            random.Random(f"load:{seed}:{c}") for c in range(clients)
        ]
        self._write_counters = [0] * clients
        #: client -> (kind, target, started_at) while an op is in flight.
        self._in_flight: Dict[int, Tuple[str, str, float]] = {}

    # ------------------------------------------------------------------
    def _pick_kind(self, rng: random.Random) -> str:
        kinds = list(self.mix)
        weights = [self.mix[k] for k in kinds]
        return rng.choices(kinds, weights=weights, k=1)[0]

    def _home(self, client: int) -> Any:
        return self.nodes[client % len(self.nodes)]

    def _writable(self, client: int) -> List[str]:
        home = self._home(client)
        return [
            name
            for name in self.registers
            if home.registers[name][0] == home.pid
        ]

    async def _one_op(self, client: int) -> None:
        rng = self._rngs[client]
        home = self._home(client)
        kind = self._pick_kind(rng)
        if kind == "write":
            writable = self._writable(client)
            if not writable:
                kind = "read"
        started = time.monotonic()
        if kind == "read":
            target = rng.choice(self.registers)
            self._in_flight[client] = (kind, target, started)
            await home.read(target)
        elif kind == "write":
            target = rng.choice(writable)
            self._write_counters[client] += 1
            value = client * 1_000_000 + self._write_counters[client]
            self._in_flight[client] = (kind, target, started)
            await home.write(target, value)
        elif kind == "transfer":
            others = [a for a in home.accounts if a != home.pid] or list(home.accounts)
            to = rng.choice(others)
            amount = rng.randint(1, self.amount_max)
            self._in_flight[client] = (kind, f"->p{to}", started)
            await home.transfer(to, amount)
        else:  # balance
            account = rng.choice(list(home.accounts))
            self._in_flight[client] = (kind, f"p{account}", started)
            await home.balance(account)
        del self._in_flight[client]
        self.stats.observe(kind, time.monotonic() - started)

    async def _client_round(self, client: int) -> None:
        for _ in range(self.ops_per_client):
            self.stats.started += 1
            await self._one_op(client)

    async def run_round(self) -> None:
        """One barrier-delimited round: every client runs its full quota."""
        self.stats.begin()
        await asyncio.gather(
            *[self._client_round(c) for c in range(self.clients)]
        )

    # ------------------------------------------------------------------
    def describe_pending(self) -> str:
        """In-flight operations, oldest first (the STALLED 'what')."""
        if not self._in_flight:
            return "none"
        now = time.monotonic()
        entries = sorted(self._in_flight.items(), key=lambda item: item[1][2])
        parts = [
            f"c{client} {kind}({target}) {now - started:.1f}s"
            for client, (kind, target, started) in entries[:6]
        ]
        if len(entries) > 6:
            parts.append(f"... +{len(entries) - 6} more")
        return f"{len(entries)} in flight: " + ", ".join(parts)
