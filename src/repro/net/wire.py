"""Wire format of the live-network runtime.

Every connection — node↔node, client↔node, and both legs of a chaos
proxy — speaks the same framing: a 4-byte big-endian length prefix
followed by a UTF-8 JSON document. JSON keeps frames inspectable with
``tcpdump``/``nc`` and round-trips every payload the virtual-time
protocol uses; the one lossy step (tuples become arrays) is undone on
receipt by :func:`freeze`, mirroring the corpus loader's
``_freeze_json`` so protocol payloads stay the hashable tuples the
emulation logic compares.

Document kinds:

* ``{"t": "hello", "pid": P}`` — first frame of every connection.
  ``pid >= 1`` identifies a cluster peer (the authenticated-channels
  assumption, discharged on localhost by trusting the handshake);
  ``pid == 0`` marks a remote load client.
* ``{"t": "msg", "m": payload}`` — one protocol payload between peers
  (possibly channel-framed). This is the only kind a chaos proxy
  faults; the handshake always passes through.
* ``{"t": "req", "id": I, "op": O, "args": [...]}`` /
  ``{"t": "res", "id": I, "ok": B, "value": V}`` — the remote-client
  request protocol (``read`` / ``write`` / ``transfer`` / ``balance``
  / ``info``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.errors import NetworkError

#: Frames above this are a protocol error, not a slow read.
MAX_FRAME = 1 << 20

_LEN_BYTES = 4


def freeze(value: Any) -> Any:
    """Recursively turn JSON arrays back into tuples (hashable payloads)."""
    if isinstance(value, list):
        return tuple(freeze(item) for item in value)
    return value


def encode(doc: Dict[str, Any]) -> bytes:
    """One wire frame for ``doc`` (length prefix + compact JSON)."""
    body = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()
    if len(body) > MAX_FRAME:
        raise NetworkError(f"frame too large: {len(body)} bytes")
    return len(body).to_bytes(_LEN_BYTES, "big") + body


async def read_doc(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """The next frame's document, or ``None`` on a clean EOF."""
    try:
        header = await reader.readexactly(_LEN_BYTES)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise NetworkError(f"frame too large: {length} bytes")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    doc = json.loads(body.decode())
    if not isinstance(doc, dict) or "t" not in doc:
        raise NetworkError(f"malformed frame: {doc!r}")
    return doc


def hello(pid: int) -> Dict[str, Any]:
    """The handshake document identifying a connection's sender."""
    return {"t": "hello", "pid": pid}


def msg(payload: Any) -> Dict[str, Any]:
    """A peer protocol frame (the kind chaos proxies fault)."""
    return {"t": "msg", "m": payload}
