"""Online linearizability oracle: live windows through the offline checker.

The tentpole invariant of the live runtime is that it adds **zero new
checker code**: sampled windows of the live history are serialized into
the same :class:`~repro.sim.history.OperationRecord` shape the
virtual-time kernel produces, and judged by the *unmodified* Wing–Gong
search (:func:`repro.spec.find_linearization`) through a shared
:class:`~repro.spec.CheckContext`.

Why windows are sound:

* The load generator is round-based with a full barrier between rounds,
  so every operation invoked in round *r* responds in round *r* — each
  window is a self-contained history with no dangling concurrency into
  its neighbours.
* Timestamps come from the server host's single monotonic clock and are
  taken *inside* the operation (invocation when the node starts it,
  response when the quorum wait completes), so each recorded interval
  contains the operation's linearization point. On one host there is no
  clock-skew caveat to discharge.
* The per-window spec is re-anchored: a register window starts from the
  last value written in earlier rounds, an asset-transfer window from
  the balances implied by earlier rounds' ``"ok"`` transfers (balance
  effects of a transfer multiset are order-independent, so the anchor
  does not depend on the earlier rounds' linearization order).

Evidence files (``kind = "net-window"``) are corpus-style JSON — frozen
via the same conventions as ``repro.campaign.corpus`` (sorted keys,
compact separators) — and carry everything needed to re-check offline:
:func:`check_evidence` rebuilds the records and spec, re-runs the exact
same search, and re-emits the document; a byte-identical result is the
acceptance test that the online path adds nothing to the offline one.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net import wire
from repro.sim.history import History, OperationRecord
from repro.spec import CheckContext, find_linearization
from repro.spec.sequential import AssetTransferSpec, RegularRegisterSpec

#: Version stamp of the evidence document format.
EVIDENCE_VERSION = 1
#: The ``kind`` field of live-window evidence documents.
EVIDENCE_KIND = "net-window"

#: Search budget for window checks. Windows are bounded by the load
#: generator's round size, so this is generous.
WINDOW_MAX_NODES = 2_000_000


class LiveHistory:
    """A :class:`History` timestamped by the host's monotonic clock.

    Times are integer nanoseconds since the history's epoch — integral
    so records round-trip through JSON exactly, monotonic so precedence
    (Definition 1) means what it meant in virtual time.
    """

    def __init__(self) -> None:
        self.history = History()
        self._epoch = time.monotonic_ns()
        #: Completed operations — a progress signal for the monitor.
        self.responses = 0

    def now(self) -> int:
        return time.monotonic_ns() - self._epoch

    def invoke(self, pid: int, obj: str, op: str, args: Tuple[Any, ...]) -> int:
        return self.history.record_invocation(
            pid, obj, op, wire.freeze(args), self.now()
        )

    def respond(self, op_id: int, result: Any) -> None:
        self.history.record_response(op_id, wire.freeze(result), self.now())
        self.responses += 1

    def __len__(self) -> int:
        return len(self.history)


# ----------------------------------------------------------------------
# Record / spec (de)serialization
# ----------------------------------------------------------------------
def record_to_json(record: OperationRecord, base: int) -> Dict[str, Any]:
    """One record as a JSON document, times rebased to the window start."""
    return {
        "op_id": record.op_id,
        "pid": record.pid,
        "obj": record.obj,
        "op": record.op,
        "args": list(record.args),
        "invoked_at": record.invoked_at - base,
        "responded_at": (
            None if record.responded_at is None else record.responded_at - base
        ),
        "result": record.result,
    }


def record_from_json(doc: Dict[str, Any]) -> OperationRecord:
    """The inverse of :func:`record_to_json` (arrays refrozen to tuples)."""
    args = wire.freeze(doc["args"])
    if not isinstance(args, tuple):
        raise ConfigurationError(f"record args must be an array: {doc!r}")
    return OperationRecord(
        op_id=doc["op_id"],
        pid=doc["pid"],
        obj=doc["obj"],
        op=doc["op"],
        args=args,
        invoked_at=doc["invoked_at"],
        responded_at=doc["responded_at"],
        result=wire.freeze(doc["result"]),
    )


def spec_to_json(spec: Any) -> Dict[str, Any]:
    """The window spec as JSON (register and asset-transfer only)."""
    if isinstance(spec, RegularRegisterSpec):
        return {"type": "regular_register", "initial": spec.initial}
    if isinstance(spec, AssetTransferSpec):
        return {
            "type": "asset_transfer",
            "accounts": list(spec.accounts),
            "initial": list(spec.initial),
        }
    raise ConfigurationError(f"no JSON form for spec {spec!r}")


def spec_from_json(doc: Dict[str, Any]) -> Any:
    kind = doc.get("type")
    if kind == "regular_register":
        return RegularRegisterSpec(initial=wire.freeze(doc["initial"]))
    if kind == "asset_transfer":
        return AssetTransferSpec(
            accounts=wire.freeze(doc["accounts"]),
            initial=wire.freeze(doc["initial"]),
        )
    raise ConfigurationError(f"unknown spec type {kind!r}")


# ----------------------------------------------------------------------
# Window evidence
# ----------------------------------------------------------------------
def window_evidence(
    label: str,
    window: int,
    obj: str,
    spec: Any,
    records: Sequence[OperationRecord],
    ctx: Optional[CheckContext] = None,
) -> Dict[str, Any]:
    """Check one sampled window; return its full evidence document.

    The search runs on the records *after* a JSON round trip (times
    rebased, values refrozen) — i.e. on exactly what
    :func:`check_evidence` will rebuild — so the offline re-check is
    byte-identical by construction, not by luck.
    """
    base = min((r.invoked_at for r in records), default=0)
    record_docs = [record_to_json(r, base) for r in records]
    rebuilt = [record_from_json(d) for d in record_docs]
    result = find_linearization(rebuilt, spec, max_nodes=WINDOW_MAX_NODES, ctx=ctx)
    return {
        "version": EVIDENCE_VERSION,
        "kind": EVIDENCE_KIND,
        "label": label,
        "window": window,
        "object": obj,
        "spec": spec_to_json(spec),
        "records": record_docs,
        "verdict": {
            "ok": result.ok,
            "order": result.order,
            "explored": result.explored,
            "reason": result.reason,
        },
    }


def check_evidence(
    doc: Dict[str, Any], ctx: Optional[CheckContext] = None
) -> Dict[str, Any]:
    """Re-run an evidence document's check offline; return the re-emission.

    The caller compares ``evidence_bytes(doc)`` with
    ``evidence_bytes(check_evidence(doc))`` — byte equality proves the
    online verdict is exactly what the offline checker computes from the
    serialized window.
    """
    if doc.get("kind") != EVIDENCE_KIND:
        raise ConfigurationError(f"not a {EVIDENCE_KIND} document: {doc.get('kind')!r}")
    if doc.get("version") != EVIDENCE_VERSION:
        raise ConfigurationError(f"unknown evidence version {doc.get('version')!r}")
    spec = spec_from_json(doc["spec"])
    records = [record_from_json(d) for d in doc["records"]]
    return window_evidence(
        doc["label"], doc["window"], doc["object"], spec, records, ctx=ctx
    )


def evidence_bytes(doc: Dict[str, Any]) -> bytes:
    """Canonical serialization (corpus conventions: sorted keys, compact)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def window_slices(history: History, boundaries: Sequence[int]) -> List[List[OperationRecord]]:
    """Split a history into per-window record lists by invocation index.

    ``boundaries`` holds the history length observed at each barrier
    (monotone, last = final length); window *i* is the records invoked
    between barrier *i* and barrier *i + 1*.
    """
    records = history.all()
    out: List[List[OperationRecord]] = []
    start = 0
    for end in boundaries:
        out.append(records[start:end])
        start = end
    return out
