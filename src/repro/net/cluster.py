"""Live cluster orchestration: deploy, load, fault, monitor, judge.

:class:`LiveCluster` composes the whole runtime:

1. boot ``n`` :class:`~repro.net.node.NetNode` servers on localhost
   (each with a :class:`~repro.net.channels.WallClockChannels` layer
   when retransmission is on);
2. if the profile declares faults, stand a
   :class:`~repro.net.chaos.ChaosProxy` in front of every node and
   route all peer traffic through the proxies; crash faults are
   additionally *enacted* — a scheduler task stops the node process at
   the crash time and (for crash-recovery windows) restarts it through
   its recovery protocol;
3. drive the :class:`~repro.net.loadgen.LoadGenerator` round by round,
   racing every round against the
   :class:`~repro.net.monitor.WallClockProgressMonitor`'s stall event;
4. at each round barrier, hand the round's history window to the
   online oracle (:mod:`repro.net.oracle`) and fold the verdicts.

The run verdict vocabulary is the conformance matrix's: ``CLEAN`` (all
sampled windows linearizable), ``VIOLATING`` (some window is not — the
evidence document pinpoints it), ``STALLED`` (progress stopped; the
diagnosis names the stuck operations and what the chaos layer cut).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.net.chaos import ChaosClock, ChaosProxy, describe_suppression
from repro.net.channels import WallClockChannels
from repro.net.loadgen import LoadGenerator
from repro.net.monitor import WallClockProgressMonitor
from repro.net.node import NetNode
from repro.net.oracle import LiveHistory, window_evidence, window_slices
from repro.spec import CheckContext
from repro.spec.sequential import AssetTransferSpec, RegularRegisterSpec

CLEAN = "CLEAN"
VIOLATING = "VIOLATING"
STALLED = "STALLED"


@dataclass(frozen=True)
class LiveProfile:
    """Everything that shapes one live run (hashable, JSON-friendly).

    Attributes:
        n: Cluster size.
        f: Fault bound (requires ``n > 2f`` for quorum intersection —
            ``n > 3f`` is not needed here: the live runtime injects
            crash/network faults, not Byzantine replicas).
        seed: Workload seed (client op sequences).
        clients: Concurrent load clients.
        rounds: Barrier-delimited rounds (= sampled windows).
        ops_per_client: Operations per client per round.
        mix: Op mix weights, or ``None`` for the default.
        assets: Also emulate the asset-transfer object (ledger
            registers + transfer/balance ops in the default mix).
        initial_balance: Starting balance per account.
        faults: Fault-plan spec tuple (PR 8 vocabulary; times in ms
            since cluster epoch). Empty = no chaos proxies.
        fault_seed: Chaos determinism seed.
        retransmit: Frame peer traffic through wall-clock channels.
        base_timeout: Channel first-retransmit timeout (seconds).
        max_backoff: Channel backoff cap (seconds).
        max_retries: Channel retry budget per frame.
        window: Progress-monitor stall window (seconds).
        requery: Node-side pacing base for blocking waits (seconds).
        label: Report/evidence label.
        host: Interface for every listener.
    """

    n: int = 4
    f: int = 1
    seed: int = 0
    clients: int = 100
    rounds: int = 3
    ops_per_client: int = 4
    mix: Optional[Tuple[Tuple[str, float], ...]] = None
    assets: bool = True
    initial_balance: int = 10
    faults: Tuple[Tuple[Any, ...], ...] = ()
    fault_seed: int = 0
    retransmit: bool = True
    base_timeout: float = 0.05
    max_backoff: float = 0.4
    max_retries: int = 10
    window: float = 2.0
    requery: float = 0.05
    label: str = "net"
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.n < 2 or self.f < 0 or self.n <= 2 * self.f:
            raise ConfigurationError(
                f"live cluster needs n > 2f with n >= 2, got n={self.n}, f={self.f}"
            )
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")


@dataclass
class LiveRunReport:
    """The outcome of one :func:`run_live` invocation."""

    label: str
    verdict: str
    diagnosis: Optional[str]
    rounds_completed: int
    windows: List[Dict[str, Any]] = field(default_factory=list)
    load: Dict[str, Any] = field(default_factory=dict)
    nodes: List[Dict[str, Any]] = field(default_factory=list)
    chaos: Dict[str, Any] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.verdict == CLEAN

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "verdict": self.verdict,
            "diagnosis": self.diagnosis,
            "rounds_completed": self.rounds_completed,
            "windows": self.windows,
            "load": self.load,
            "nodes": self.nodes,
            "chaos": self.chaos,
        }

    def describe(self) -> str:
        lines = [f"{self.label}: {self.verdict}"]
        if self.diagnosis:
            lines.append(f"  {self.diagnosis}")
        ok = sum(1 for w in self.windows if w["verdict"]["ok"])
        lines.append(
            f"  windows: {ok}/{len(self.windows)} clean over "
            f"{self.rounds_completed} completed round(s)"
        )
        if self.load:
            lines.append(
                f"  load: {self.load.get('ops', 0)} ops in "
                f"{self.load.get('duration_s', 0)}s "
                f"({self.load.get('ops_per_s', 0)} ops/s)"
            )
            for kind, stats in sorted(self.load.get("kinds", {}).items()):
                lines.append(
                    f"    {kind}: n={stats['count']} p50={stats['p50_ms']}ms "
                    f"p90={stats['p90_ms']}ms p99={stats['p99_ms']}ms "
                    f"max={stats['max_ms']}ms"
                )
        return "\n".join(lines)


class LiveCluster:
    """One deployed localhost cluster plus its chaos/monitoring plumbing."""

    def __init__(self, profile: LiveProfile):
        self.profile = profile
        self.plan = FaultPlan.from_spec(profile.faults, seed=profile.fault_seed)
        self.clock = ChaosClock()
        self.history = LiveHistory()
        self.ctx = CheckContext()
        self.registers: Dict[str, Tuple[int, Any]] = {
            f"reg:{pid}": (pid, 0) for pid in range(1, profile.n + 1)
        }
        self.accounts: Tuple[int, ...] = ()
        if profile.assets:
            self.accounts = tuple(range(1, profile.n + 1))
            for pid in self.accounts:
                self.registers[f"led:{pid}"] = (pid, ())
        self.nodes: List[NetNode] = []
        self.proxies: Dict[int, ChaosProxy] = {}
        self._fault_tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    async def start(self) -> None:
        profile = self.profile
        for pid in range(1, profile.n + 1):
            channels = None
            if profile.retransmit:
                channels = WallClockChannels(
                    pid,
                    base_timeout=profile.base_timeout,
                    max_backoff=profile.max_backoff,
                    max_retries=profile.max_retries,
                    seed=profile.fault_seed,
                )
            node = NetNode(
                pid,
                profile.n,
                profile.f,
                self.registers,
                history=self.history,
                channels=channels,
                accounts=self.accounts or None,
                initial_balance=profile.initial_balance,
                requery=profile.requery,
                host=profile.host,
            )
            await node.start()
            self.nodes.append(node)
        routes: Dict[int, Tuple[str, int]] = {}
        if profile.faults:
            for node in self.nodes:
                proxy = ChaosProxy(
                    self.plan,
                    node.pid,
                    (profile.host, node.port),
                    self.clock,
                    host=profile.host,
                )
                await proxy.start()
                self.proxies[node.pid] = proxy
                routes[node.pid] = (profile.host, proxy.port)
        else:
            routes = {node.pid: (profile.host, node.port) for node in self.nodes}
        for node in self.nodes:
            node.set_routes(routes)
        for crash in self.plan.crashes:
            self._fault_tasks.append(
                asyncio.ensure_future(self._enact_crash(crash))
            )

    async def _enact_crash(self, crash: Any) -> None:
        """Stop the node at its crash time; restart-and-recover if planned."""
        node = self.nodes[crash.pid - 1]
        await asyncio.sleep(max(0.0, crash.at - self.clock.now()) / 1000.0)
        await node.stop()
        if crash.recover_at is None:
            return
        await asyncio.sleep(max(0.0, crash.recover_at - self.clock.now()) / 1000.0)
        await node.restart()

    async def stop(self) -> None:
        for task in self._fault_tasks:
            task.cancel()
        for task in self._fault_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._fault_tasks = []
        for proxy in self.proxies.values():
            await proxy.stop()
        for node in self.nodes:
            await node.stop()

    # ------------------------------------------------------------------
    def _signals(self) -> Tuple:
        """Progress = completed operations + protocol-state versions.

        Deliberately *not* raw frame counts: retransmissions and deduped
        duplicates churn the transport without advancing anything, and
        counting them would let a dead cluster look alive.
        """
        return (
            self.history.responses,
            len(self.history),
            sum(node.version for node in self.nodes),
        )

    def _build_monitor(self, loadgen: LoadGenerator) -> WallClockProgressMonitor:
        suppression = None
        if self.proxies:
            suppression = lambda: describe_suppression(
                self.plan, self.proxies, self.clock.now()
            )
        return WallClockProgressMonitor(
            self._signals,
            window=self.profile.window,
            describe_pending=loadgen.describe_pending,
            describe_suppression=suppression,
            channels=[n.channels for n in self.nodes if n.channels is not None],
        )

    # ------------------------------------------------------------------
    async def run(self) -> LiveRunReport:
        """Drive the full load; return the judged report."""
        profile = self.profile
        loadgen = LoadGenerator(
            self.nodes,
            registers=[f"reg:{pid}" for pid in range(1, profile.n + 1)],
            clients=profile.clients,
            ops_per_client=profile.ops_per_client,
            mix=dict(profile.mix) if profile.mix is not None else None,
            seed=profile.seed,
        )
        monitor = self._build_monitor(loadgen)
        monitor.start()

        anchors: Dict[str, Any] = {
            name: initial
            for name, (_writer, initial) in self.registers.items()
            if name.startswith("reg:")
        }
        balances: List[int] = [profile.initial_balance] * len(self.accounts)
        boundaries: List[int] = []
        windows: List[Dict[str, Any]] = []
        verdict = CLEAN
        diagnosis: Optional[str] = None
        rounds_completed = 0

        try:
            for round_index in range(profile.rounds):
                round_task = asyncio.ensure_future(loadgen.run_round())
                stall_task = asyncio.ensure_future(monitor.stalled_event.wait())
                done, _pending = await asyncio.wait(
                    {round_task, stall_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if round_task not in done:
                    round_task.cancel()
                    try:
                        await round_task
                    except (asyncio.CancelledError, Exception):
                        pass
                    verdict = STALLED
                    diagnosis = monitor.stalled
                    break
                stall_task.cancel()
                await round_task  # propagate real load errors loudly
                rounds_completed += 1
                boundaries.append(len(self.history.history))
                round_windows = self._check_window(
                    round_index, boundaries, anchors, balances
                )
                windows.extend(round_windows)
                if any(not w["verdict"]["ok"] for w in round_windows):
                    verdict = VIOLATING
                    break
        finally:
            loadgen.stats.end()
            await monitor.stop()

        return LiveRunReport(
            label=profile.label,
            verdict=verdict,
            diagnosis=diagnosis,
            rounds_completed=rounds_completed,
            windows=windows,
            load=loadgen.stats.summary(),
            nodes=[node.metrics() for node in self.nodes],
            chaos={
                "plan": self.plan.describe(),
                "proxies": {
                    str(pid): proxy.metrics()
                    for pid, proxy in sorted(self.proxies.items())
                },
            },
        )

    def _check_window(
        self,
        round_index: int,
        boundaries: List[int],
        anchors: Dict[str, Any],
        balances: List[int],
    ) -> List[Dict[str, Any]]:
        """Judge the just-completed round's window; advance the anchors."""
        records = window_slices(self.history.history, boundaries)[-1]
        by_obj: Dict[str, List] = {}
        for record in records:
            by_obj.setdefault(record.obj, []).append(record)
        out: List[Dict[str, Any]] = []
        for obj, obj_records in sorted(by_obj.items()):
            if obj.startswith("reg:"):
                spec: Any = RegularRegisterSpec(initial=anchors[obj])
            elif obj == "assets":
                spec = AssetTransferSpec(
                    accounts=self.accounts, initial=tuple(balances)
                )
            else:  # pragma: no cover - ledger ops are never recorded
                continue
            out.append(
                window_evidence(
                    self.profile.label,
                    round_index,
                    obj,
                    spec,
                    obj_records,
                    ctx=self.ctx,
                )
            )
        # Re-anchor for the next window: registers at their last written
        # value, balances at the effect of this round's "ok" transfers
        # (order-independent, so no linearization order is needed).
        for record in records:
            if record.obj.startswith("reg:") and record.op == "write":
                anchors[record.obj] = record.args[0]
            elif (
                record.obj == "assets"
                and record.op == "transfer"
                and record.result == "ok"
            ):
                owner, to, amount = record.args
                balances[self.accounts.index(owner)] -= amount
                balances[self.accounts.index(to)] += amount
        return out


async def _run_live(profile: LiveProfile) -> LiveRunReport:
    cluster = LiveCluster(profile)
    await cluster.start()
    try:
        return await cluster.run()
    finally:
        await cluster.stop()


def run_live(profile: LiveProfile) -> LiveRunReport:
    """Deploy, load, and judge one live cluster (blocking entry point)."""
    return asyncio.run(_run_live(profile))


def report_to_json_str(report: LiveRunReport) -> str:
    """Stable serialization of a report (sorted keys, 2-space indent)."""
    return json.dumps(report.to_json(), sort_keys=True, indent=2)
