"""Wall-clock retransmission channels: the PR 8 layer over real sockets.

The virtual-time :class:`repro.faults.RetransmitChannels` rebuilds the
reliable-channel assumption over a fair-lossy network; this is its
wall-clock port for the live runtime, with the same framing and the
same metric vocabulary:

* every protocol payload travels as ``("CH", seq, payload)`` with a
  per-destination sequence number;
* the receiver **always** acknowledges (``("CH-ACK", seq)``) and
  delivers at most once (seqno dedup absorbs chaos-proxy duplication
  and retransmit races);
* unacknowledged frames are retransmitted on a timeout that backs off
  exponentially up to ``max_backoff`` seconds, with seeded *downward*
  jitter (the cap stays a true bound, which is what the progress
  monitor's window validation relies on — see
  :class:`repro.net.monitor.WallClockProgressMonitor`);
* after ``max_retries`` attempts a frame is abandoned and counted in
  ``exhausted`` — a metric, not an exception: over a fair-lossy link it
  means the retry budget was too small, over a quorum-starving
  partition it is the expected prelude to a ``STALLED`` verdict.

Unlike the simulator's one-instance-per-system class, each
:class:`NetNode` owns one :class:`WallClockChannels` (a real process
owns only its own channel state); the metric keys match so live reports
and virtual-time reports read the same.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError


class _PendingFrame:
    """Sender-side bookkeeping for one unacknowledged frame."""

    __slots__ = ("dest", "seq", "payload", "due", "attempts")

    def __init__(self, dest: int, seq: int, payload: Any, due: float):
        self.dest = dest
        self.seq = seq
        self.payload = payload
        self.due = due
        self.attempts = 0


class WallClockChannels:
    """Reliable per-destination channels for one live node.

    Args:
        pid: The owning node's pid (jitter seeding and diagnostics).
        base_timeout: Seconds before the first retransmit of a frame.
        max_backoff: Cap, in seconds, on the doubling retransmit
            interval. Jitter is applied downward, so no retransmit gap
            ever exceeds this cap.
        max_retries: Retransmit attempts before a frame is abandoned
            (counted in :attr:`exhausted`).
        jitter: Fraction of each backoff randomly shaved off, from a
            ``random.Random`` seeded with ``(seed, pid)`` — retransmit
            storms from n nodes desynchronize deterministically.
        seed: Jitter seed.
    """

    def __init__(
        self,
        pid: int,
        base_timeout: float = 0.05,
        max_backoff: float = 0.8,
        max_retries: int = 12,
        jitter: float = 0.25,
        seed: int = 0,
    ):
        if base_timeout <= 0 or max_backoff < base_timeout or max_retries < 0:
            raise ConfigurationError(
                f"bad channel timing: base_timeout={base_timeout}, "
                f"max_backoff={max_backoff}, max_retries={max_retries}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")
        self.pid = pid
        self.base_timeout = base_timeout
        self.max_backoff = max_backoff
        self.max_retries = max_retries
        self.jitter = jitter
        self._rng = random.Random(f"net-channels:{seed}:{pid}")
        #: Next sequence number per destination.
        self._next_seq: Dict[int, int] = {}
        #: Unacked frames: (dst, seq) -> _PendingFrame.
        self._pending: Dict[Tuple[int, int], _PendingFrame] = {}
        #: Receiver-side dedup: sender -> delivered seqs.
        self._seen: Dict[int, Set[int]] = {}
        # Metrics (same keys as the virtual-time layer).
        self.sent = 0
        self.retransmitted = 0
        self.acked = 0
        self.duplicates_dropped = 0
        self.exhausted = 0

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def frame(self, dst: int, payload: Any, now: float) -> Any:
        """Frame ``payload`` for ``dst``; registers it for retransmission."""
        seq = self._next_seq.get(dst, 0) + 1
        self._next_seq[dst] = seq
        self._pending[(dst, seq)] = _PendingFrame(
            dst, seq, payload, now + self._interval(0)
        )
        self.sent += 1
        return ("CH", seq, payload)

    def due_retransmits(self, now: float) -> List[Tuple[int, Any]]:
        """``(dst, wire_payload)`` for every overdue frame; abandons at cap."""
        out: List[Tuple[int, Any]] = []
        abandoned: List[Tuple[int, int]] = []
        for key, pending in self._pending.items():
            if pending.due > now:
                continue
            pending.attempts += 1
            if pending.attempts > self.max_retries:
                abandoned.append(key)
                continue
            self.retransmitted += 1
            pending.due = now + self._interval(pending.attempts)
            out.append((pending.dest, ("CH", pending.seq, pending.payload)))
        for key in abandoned:
            del self._pending[key]
            self.exhausted += 1
        return out

    def _interval(self, attempts: int) -> float:
        backoff = min(self.base_timeout * (2 ** attempts), self.max_backoff)
        return backoff * (1.0 - self.jitter * self._rng.random())

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_receive(
        self, sender: int, payload: Any
    ) -> Tuple[Optional[Any], List[Any]]:
        """Unframe one inbound payload.

        Returns ``(inner, acks)``: ``inner`` is the deliverable protocol
        payload (``None`` for duplicates and pure acks), ``acks`` the
        raw payloads to send back to ``sender`` *outside* the channel
        layer. Non-channel payloads pass through untouched.
        """
        if isinstance(payload, tuple) and len(payload) == 3 and payload[0] == "CH":
            _k, seq, inner = payload
            if not isinstance(seq, int) or isinstance(seq, bool):
                return None, []
            acks: List[Any] = [("CH-ACK", seq)]
            seen = self._seen.setdefault(sender, set())
            if seq in seen:
                self.duplicates_dropped += 1
                return None, acks
            seen.add(seq)
            return inner, acks
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "CH-ACK":
            _k, seq = payload
            if self._pending.pop((sender, seq), None) is not None:
                self.acked += 1
            return None, []
        return payload, []

    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Frames sent but not yet acknowledged or abandoned."""
        return len(self._pending)

    def metrics(self) -> Dict[str, int]:
        """Plain-dict counters, key-compatible with the virtual-time layer."""
        return {
            "sent": self.sent,
            "retransmitted": self.retransmitted,
            "acked": self.acked,
            "duplicates_dropped": self.duplicates_dropped,
            "exhausted": self.exhausted,
            "pending": self.pending_count(),
        }
