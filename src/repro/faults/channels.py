"""Retransmission channels: reliable links rebuilt over fair-lossy ones.

The paper (and the [11] emulation in :mod:`repro.mp.swmr_emulation`)
assumes reliable authenticated channels. Over a fair-lossy
:class:`repro.faults.FaultyNetwork` that assumption breaks; this module
rebuilds it with the classic mechanism:

* every protocol payload is framed as ``("CH", seq, payload)`` with a
  per-``(src, dst)`` sequence number;
* the receiver **always acknowledges** a frame (``("CH-ACK", seq)``)
  and delivers the inner payload at most once (seqno dedup absorbs
  duplication and retransmit races);
* the sender keeps unacknowledged frames pending and retransmits on a
  virtual-time timeout with exponential backoff, up to ``max_retries``
  attempts; exhaustion is surfaced in :attr:`RetransmitChannels.exhausted`
  (a metric, not an exception — over a fair-lossy link exhaustion means
  the retry budget was too small; over a partition it is expected).

Fair-lossy links deliver any message retransmitted infinitely often, so
with an adequate retry budget the framed channel is reliable and the
emulation's quorum arguments go through unchanged. Nothing here is
randomized: retransmit timing is a pure function of the virtual clock,
so faulty runs stay replayable.

Unframed payloads pass through :meth:`RetransmitChannels.on_receive`
untouched, which lets channel-framed and bare traffic coexist during
migration (and keeps Byzantine senders free to ignore the framing).

The per-channel ``seen`` sets grow with the run; a production
implementation would use cumulative acks — bounded runs make the simple
set fine here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.sim.effects import Send


class _PendingFrame:
    """Sender-side bookkeeping for one unacknowledged frame."""

    __slots__ = ("dest", "seq", "payload", "due", "attempts")

    def __init__(self, dest: int, seq: int, payload: Any, due: int):
        self.dest = dest
        self.seq = seq
        self.payload = payload
        self.due = due
        self.attempts = 0


class RetransmitChannels:
    """Reliable per-process-pair channels over a lossy network.

    One instance serves every process of a system (mirroring
    :class:`repro.mp.RegisterEmulation`'s per-pid state maps); all entry
    points take the acting pid explicitly.

    Args:
        system: The system whose clock paces retransmission.
        base_timeout: Steps before the first retransmit of a frame.
            Should comfortably exceed the network round trip.
        max_backoff: Cap on the doubling retransmit interval.
        max_retries: Retransmit attempts before a frame is abandoned
            (counted in :attr:`exhausted`).
    """

    def __init__(
        self,
        system: Any,
        base_timeout: int = 24,
        max_backoff: int = 384,
        max_retries: int = 12,
    ):
        if base_timeout < 1 or max_backoff < base_timeout or max_retries < 0:
            raise ConfigurationError(
                f"bad channel timing: base_timeout={base_timeout}, "
                f"max_backoff={max_backoff}, max_retries={max_retries}"
            )
        self.system = system
        self.base_timeout = base_timeout
        self.max_backoff = max_backoff
        self.max_retries = max_retries
        #: Next sequence number per (src, dst).
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: Unacked frames per src: {(dst, seq): _PendingFrame}.
        self._pending: Dict[int, Dict[Tuple[int, int], _PendingFrame]] = {}
        #: Receiver-side dedup: (receiver, sender) -> delivered seqs.
        self._seen: Dict[Tuple[int, int], Set[int]] = {}
        # Metrics.
        self.sent = 0
        self.retransmitted = 0
        self.acked = 0
        self.duplicates_dropped = 0
        self.exhausted = 0

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def send_effects(self, src: int, dst: int, payload: Any) -> List[Any]:
        """Effects that send ``payload`` reliably from ``src`` to ``dst``."""
        key = (src, dst)
        seq = self._next_seq.get(key, 0) + 1
        self._next_seq[key] = seq
        frame = _PendingFrame(
            dst, seq, payload, self.system.clock + self.base_timeout
        )
        self._pending.setdefault(src, {})[(dst, seq)] = frame
        self.sent += 1
        return [Send(dst, ("CH", seq, payload))]

    def broadcast_effects(self, src: int, payload: Any) -> List[Any]:
        """Reliable broadcast: one channel send per destination ``1..n``."""
        effects: List[Any] = []
        for dst in range(1, self.system.n + 1):
            effects.extend(self.send_effects(src, dst, payload))
        return effects

    def due_retransmits(self, src: int, now: int) -> List[Any]:
        """Effects re-sending every overdue unacked frame of ``src``."""
        pending = self._pending.get(src)
        if not pending:
            return []
        effects: List[Any] = []
        abandoned: List[Tuple[int, int]] = []
        for key, frame in pending.items():
            if frame.due > now:
                continue
            frame.attempts += 1
            if frame.attempts > self.max_retries:
                abandoned.append(key)
                continue
            self.retransmitted += 1
            backoff = min(
                self.base_timeout * (2 ** frame.attempts), self.max_backoff
            )
            frame.due = now + backoff
            effects.append(Send(frame.dest, ("CH", frame.seq, frame.payload)))
        for key in abandoned:
            del pending[key]
            self.exhausted += 1
        return effects

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_receive(
        self, pid: int, sender: int, payload: Any
    ) -> Tuple[Optional[Any], List[Any]]:
        """Unframe one inbound message.

        Returns ``(inner_payload, effects)``: ``inner_payload`` is the
        deliverable protocol payload (``None`` for duplicates and pure
        acks), ``effects`` the acknowledgement sends to emit. Payloads
        that are not channel frames pass through unchanged.
        """
        if isinstance(payload, tuple) and len(payload) == 3 and payload[0] == "CH":
            _k, seq, inner = payload
            if not isinstance(seq, int) or isinstance(seq, bool):
                return None, []
            # Always ack — the previous ack may have been the lost leg.
            effects: List[Any] = [Send(sender, ("CH-ACK", seq))]
            seen = self._seen.setdefault((pid, sender), set())
            if seq in seen:
                self.duplicates_dropped += 1
                return None, effects
            seen.add(seq)
            return inner, effects
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "CH-ACK":
            _k, seq = payload
            pending = self._pending.get(pid)
            if pending is not None and pending.pop((sender, seq), None) is not None:
                self.acked += 1
            return None, []
        return payload, []

    # ------------------------------------------------------------------
    def pending_count(self, src: Optional[int] = None) -> int:
        """Unacked frames of ``src`` (or of every process when omitted)."""
        if src is not None:
            return len(self._pending.get(src, ()))
        return sum(len(frames) for frames in self._pending.values())

    def metrics(self) -> Dict[str, int]:
        """Plain-dict channel counters for reports and tests."""
        return {
            "sent": self.sent,
            "retransmitted": self.retransmitted,
            "acked": self.acked,
            "duplicates_dropped": self.duplicates_dropped,
            "exhausted": self.exhausted,
            "pending": self.pending_count(),
        }
