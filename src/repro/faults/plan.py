"""Declarative fault plans: seeded, replayable, fingerprint-stable.

A :class:`FaultPlan` is built from a tuple-of-tuples *spec* — the same
hashable shape scenario parameters use, so a plan travels inside a
:class:`repro.scenarios.Scenario` unchanged and survives the corpus
loader's JSON round trip. The vocabulary:

* ``("drop", src, dst, p)`` — drop each matching message with
  probability ``p`` (fair-lossy links: every message is dropped
  independently, so an infinitely-retransmitted message is delivered
  eventually).
* ``("dup", src, dst, p)`` — submit a second copy with probability ``p``.
* ``("delay", src, dst, p, extra)`` — with probability ``p`` hold the
  message for ``extra`` additional virtual-time steps before handing it
  to the wrapped network (large ``extra`` on a few links produces
  reorder storms).
* ``("partition", (group, group, ...), start, end)`` — between clocks
  ``start <= now < end`` (``end=None`` means forever), messages whose
  endpoints sit in *different* groups are suppressed; a pid absent from
  every group communicates freely. Both submission and delivery are
  checked, so messages already in flight when the window opens are cut
  too.
* ``("crash", pid, at)`` — crash-stop: from clock ``at`` on, nothing the
  pid sends is submitted and nothing addressed to it is delivered.
* ``("crash", pid, at, recover_at)`` — crash-recovery: the suppression
  window closes at ``recover_at``. This models a process that was
  unreachable (its volatile protocol state survives); true lose-state
  recovery would need process-level support.

``src``/``dst`` use ``0`` as a wildcard (pids are ``1..n``). All random
draws made while *applying* a plan come from a ``random.Random`` seeded
with the plan's ``seed``, in submission order — identical plans applied
to identical submission sequences make identical decisions, which is
what makes faulty runs replayable and shrinkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.fingerprint import digest64

#: Fault kinds a plan spec may contain, with their arities.
_LINK_KINDS = {"drop": 4, "dup": 4, "delay": 5}


def _check_prob(kind: str, prob: Any) -> float:
    if not isinstance(prob, (int, float)) or not 0.0 <= prob <= 1.0:
        raise ConfigurationError(f"{kind} probability must be in [0, 1], got {prob!r}")
    return float(prob)


def _check_endpoint(kind: str, which: str, pid: Any) -> int:
    if not isinstance(pid, int) or isinstance(pid, bool) or pid < 0:
        raise ConfigurationError(f"{kind} {which} must be a pid or 0 (any), got {pid!r}")
    return pid


@dataclass(frozen=True)
class _LinkRule:
    """One probabilistic per-link rule (drop / dup / delay)."""

    kind: str
    src: int  # 0 = any sender
    dst: int  # 0 = any destination
    prob: float
    extra: int = 0  # delay only

    def matches(self, sender: int, dest: int) -> bool:
        return (self.src in (0, sender)) and (self.dst in (0, dest))


@dataclass(frozen=True)
class _Partition:
    """A timed partition window over disjoint process groups."""

    groups: Tuple[frozenset, ...]
    start: int
    end: Optional[int]  # None = until the end of the run

    def active(self, now: int) -> bool:
        return now >= self.start and (self.end is None or now < self.end)

    def cuts(self, sender: int, dest: int, now: int) -> bool:
        if sender == dest or not self.active(now):
            return False
        side_s = side_d = None
        for index, group in enumerate(self.groups):
            if sender in group:
                side_s = index
            if dest in group:
                side_d = index
        return side_s is not None and side_d is not None and side_s != side_d

    def describe(self) -> str:
        body = "|".join(
            ",".join(str(pid) for pid in sorted(group)) for group in self.groups
        )
        end = "inf" if self.end is None else str(self.end)
        return f"partition({body})@[{self.start},{end})"


@dataclass(frozen=True)
class _Crash:
    """Crash-stop (``recover_at=None``) or crash-recovery of one pid."""

    pid: int
    at: int
    recover_at: Optional[int] = None

    def down(self, now: int) -> bool:
        return now >= self.at and (self.recover_at is None or now < self.recover_at)

    def describe(self) -> str:
        if self.recover_at is None:
            return f"crash(p{self.pid}@{self.at})"
        return f"crash(p{self.pid}@[{self.at},{self.recover_at}))"


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, validated fault plan (see module docstring).

    Construct with :meth:`from_spec`; the original spec tuple is kept so
    the plan fingerprints and reprs exactly as declared.
    """

    spec: Tuple[Tuple[Any, ...], ...]
    seed: int = 0
    link_rules: Tuple[_LinkRule, ...] = field(default=(), compare=False)
    partitions: Tuple[_Partition, ...] = field(default=(), compare=False)
    crashes: Tuple[_Crash, ...] = field(default=(), compare=False)

    @classmethod
    def from_spec(cls, spec: Any, seed: int = 0) -> "FaultPlan":
        """Parse and validate a declarative spec into a plan."""
        if not isinstance(spec, (tuple, list)):
            raise ConfigurationError(f"fault spec must be a tuple of tuples, got {spec!r}")
        link_rules = []
        partitions = []
        crashes = []
        frozen = []
        for entry in spec:
            if not isinstance(entry, (tuple, list)) or not entry:
                raise ConfigurationError(f"malformed fault entry {entry!r}")
            entry = tuple(entry)
            kind = entry[0]
            if kind in _LINK_KINDS:
                if len(entry) != _LINK_KINDS[kind]:
                    raise ConfigurationError(
                        f"{kind} takes {_LINK_KINDS[kind] - 1} arguments, got {entry!r}"
                    )
                src = _check_endpoint(kind, "src", entry[1])
                dst = _check_endpoint(kind, "dst", entry[2])
                prob = _check_prob(kind, entry[3])
                extra = 0
                if kind == "delay":
                    extra = entry[4]
                    if not isinstance(extra, int) or extra < 1:
                        raise ConfigurationError(
                            f"delay extra must be a positive int, got {extra!r}"
                        )
                link_rules.append(_LinkRule(kind, src, dst, prob, extra))
            elif kind == "partition":
                if len(entry) != 4:
                    raise ConfigurationError(f"partition takes 3 arguments, got {entry!r}")
                _k, groups, start, end = entry
                if not isinstance(groups, (tuple, list)) or len(groups) < 2:
                    raise ConfigurationError(
                        f"partition needs >= 2 groups, got {groups!r}"
                    )
                parsed = tuple(frozenset(group) for group in groups)
                seen: set = set()
                for group in parsed:
                    if not group:
                        raise ConfigurationError("partition group may not be empty")
                    if seen & group:
                        raise ConfigurationError(
                            f"partition groups must be disjoint, got {groups!r}"
                        )
                    seen |= group
                if end is not None and end <= start:
                    raise ConfigurationError(
                        f"partition window must have end > start, got {entry!r}"
                    )
                partitions.append(_Partition(parsed, start, end))
                entry = ("partition", tuple(tuple(sorted(g)) for g in parsed), start, end)
            elif kind == "crash":
                if len(entry) not in (3, 4):
                    raise ConfigurationError(f"crash takes 2 or 3 arguments, got {entry!r}")
                pid = entry[1]
                if not isinstance(pid, int) or pid < 1:
                    raise ConfigurationError(f"crash pid must be >= 1, got {pid!r}")
                at = entry[2]
                recover_at = entry[3] if len(entry) == 4 else None
                if recover_at is not None and recover_at <= at:
                    raise ConfigurationError(
                        f"crash recovery must be after the crash, got {entry!r}"
                    )
                crashes.append(_Crash(pid, at, recover_at))
            else:
                raise ConfigurationError(f"unknown fault kind {kind!r} in {entry!r}")
            frozen.append(entry)
        return cls(
            spec=tuple(frozen),
            seed=seed,
            link_rules=tuple(link_rules),
            partitions=tuple(partitions),
            crashes=tuple(crashes),
        )

    # ------------------------------------------------------------------
    def crashed(self, pid: int, now: int) -> bool:
        """Whether ``pid`` is down at clock ``now``."""
        for crash in self.crashes:
            if crash.pid == pid and crash.down(now):
                return True
        return False

    def partitioned(self, sender: int, dest: int, now: int) -> bool:
        """Whether an active partition window cuts ``sender -> dest``."""
        for partition in self.partitions:
            if partition.cuts(sender, dest, now):
                return True
        return False

    def crashed_pids(self, now: int) -> Tuple[int, ...]:
        """Pids down at clock ``now`` (for diagnoses)."""
        return tuple(
            sorted({crash.pid for crash in self.crashes if crash.down(now)})
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> int:
        """64-bit digest of the declared spec + seed (stable identity)."""
        return digest64(f"faultplan\x00{self.seed}\x00{self.spec!r}")

    def describe(self) -> str:
        """Compact human summary used in STALLED diagnoses."""
        parts = []
        for rule in self.link_rules:
            src = "*" if rule.src == 0 else str(rule.src)
            dst = "*" if rule.dst == 0 else str(rule.dst)
            tail = f",+{rule.extra}" if rule.kind == "delay" else ""
            parts.append(f"{rule.kind}({src}->{dst},p={rule.prob:g}{tail})")
        parts.extend(partition.describe() for partition in self.partitions)
        parts.extend(crash.describe() for crash in self.crashes)
        return " ".join(parts) if parts else "no-faults"
