"""FaultyNetwork: apply a :class:`FaultPlan` to any existing network.

The wrapper implements the same :class:`repro.mp.network.Network`
protocol (``submit`` / ``tick`` / ``pending``) as the networks it wraps,
so it plugs into ``System.network`` unchanged and composes with
:class:`repro.mp.RandomDelayNetwork` (fair-lossy asynchronous runs) and
:class:`repro.mp.ScriptedNetwork` (adversarial message ordering under
faults).

Fault application has two checkpoints:

* **submit-side** — crash of the sender, active partitions, and the
  probabilistic link rules (drop / dup / delay) are applied before the
  wrapped network ever sees the message. Draws come from the plan-seeded
  RNG in a fixed order (drop rules, then dup, then delay, in plan
  order), so a plan's decisions are a pure function of the submission
  sequence.
* **delivery-side** — when the wrapped network decides a message is
  due, it delivers through a sieve that re-checks crashes and partition
  windows at *delivery* time, so a window that opened while the message
  was in flight still cuts it.

Every suppression is counted (``dropped`` / ``partitioned`` /
``suppressed_crash`` …) and attributed to its link in
:attr:`FaultyNetwork.suppressed_links`, which is what the progress
monitor folds into a ``STALLED`` diagnosis.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Dict, List, Tuple

from repro.faults.plan import FaultPlan
from repro.mp.network import _QueuedMessage, _queued_digest


class _DeliverySieve:
    """System proxy handed to the wrapped network's ``tick``.

    Intercepts :meth:`deliver` to apply delivery-time suppression
    (crashed endpoints, active partition windows) before the message
    reaches the real mailboxes.
    """

    __slots__ = ("_system", "_net", "_now")

    def __init__(self, system: Any, net: "FaultyNetwork", now: int):
        self._system = system
        self._net = net
        self._now = now

    def deliver(self, sender: int, dest: int, payload: Any) -> None:
        net = self._net
        plan = net.plan
        now = self._now
        if plan.crashed(dest, now) or plan.crashed(sender, now):
            net.suppressed_crash += 1
            net._note_suppressed(sender, dest)
            return
        if plan.partitioned(sender, dest, now):
            net.partitioned += 1
            net._note_suppressed(sender, dest)
            return
        net.delivered += 1
        self._system.deliver(sender, dest, payload)


class FaultyNetwork:
    """Wrap an inner network with a seeded, replayable fault plan."""

    def __init__(self, inner: Any, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self._rng = random.Random(plan.seed ^ 0x5FA17B1A)
        #: Messages held back by a delay rule, re-submitted when due.
        self._held: List[_QueuedMessage] = []
        self._tiebreak = itertools.count()
        self._held_fold = 0
        # Metrics — suppressions are *not* counted in the inner
        # network's counters (it never sees a suppressed submit).
        self.submitted = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.partitioned = 0
        self.suppressed_crash = 0
        #: (sender, dest) -> suppression count, for diagnoses.
        self.suppressed_links: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def _note_suppressed(self, sender: int, dest: int) -> None:
        key = (sender, dest)
        self.suppressed_links[key] = self.suppressed_links.get(key, 0) + 1

    def submit(self, sender: int, dest: int, payload: Any, now: int) -> None:
        """Apply submit-side faults, then hand surviving copies inward."""
        self.submitted += 1
        plan = self.plan
        if plan.crashed(sender, now):
            self.suppressed_crash += 1
            self._note_suppressed(sender, dest)
            return
        if plan.partitioned(sender, dest, now):
            self.partitioned += 1
            self._note_suppressed(sender, dest)
            return
        copies = 1
        extra_delay = 0
        # Fixed draw order: every matching rule draws exactly once, in
        # plan order, even after the message's fate is sealed — so the
        # RNG stream (and with it every later decision) depends only on
        # the submission sequence, not on which faults happened to fire.
        dropped = False
        for rule in plan.link_rules:
            if not rule.matches(sender, dest):
                continue
            draw = self._rng.random()
            if rule.kind == "drop":
                if draw < rule.prob:
                    dropped = True
            elif rule.kind == "dup":
                if draw < rule.prob:
                    copies += 1
            elif draw < rule.prob:  # delay
                extra_delay += rule.extra
        if dropped:
            self.dropped += 1
            self._note_suppressed(sender, dest)
            return
        if copies > 1:
            self.duplicated += copies - 1
        for _ in range(copies):
            if extra_delay:
                self.delayed += 1
                entry = _QueuedMessage(
                    due=now + extra_delay,
                    tiebreak=next(self._tiebreak),
                    sender=sender,
                    dest=dest,
                    payload=payload,
                )
                heapq.heappush(self._held, entry)
                self._held_fold ^= _queued_digest(entry)
            else:
                self.inner.submit(sender, dest, payload, now)

    def tick(self, now: int, system: Any) -> None:
        """Release due delayed messages, then tick the wrapped network."""
        held = self._held
        while held and held[0].due <= now:
            entry = heapq.heappop(held)
            self._held_fold ^= _queued_digest(entry)
            self.inner.submit(entry.sender, entry.dest, entry.payload, now)
        self.inner.tick(now, _DeliverySieve(system, self, now))

    def pending(self) -> int:
        """In-flight messages: delayed here plus queued in the inner net."""
        return len(self._held) + self.inner.pending()

    # ------------------------------------------------------------------
    def fingerprint_fold(self, full: bool = False) -> int:
        """XOR fold of the in-flight state (inner queue + delay buffer)."""
        if full:
            fold = 0
            for entry in self._held:
                fold ^= _queued_digest(entry)
        else:
            fold = self._held_fold
        inner_fold = getattr(self.inner, "fingerprint_fold", None)
        if inner_fold is not None:
            fold ^= inner_fold(full=full)
        return fold

    def metrics(self) -> Dict[str, int]:
        """Plain-dict suppression/delivery counters for reports and tests."""
        return {
            "submitted": self.submitted,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "partitioned": self.partitioned,
            "suppressed_crash": self.suppressed_crash,
        }

    def describe_suppression(self, now: int) -> str:
        """One-line summary of what the plan is currently cutting."""
        parts = [f"plan[{self.plan.describe()}]"]
        crashed = self.plan.crashed_pids(now)
        if crashed:
            parts.append("down=" + ",".join(f"p{pid}" for pid in crashed))
        if self.suppressed_links:
            top = sorted(
                self.suppressed_links.items(), key=lambda item: -item[1]
            )[:4]
            parts.append(
                "cut="
                + ",".join(f"{src}->{dst}:{count}" for (src, dst), count in top)
            )
        return " ".join(parts)
