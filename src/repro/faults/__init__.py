"""Fault injection for the message-passing layer.

Three pieces (see ``README.md`` § "Fault injection & liveness"):

* :class:`FaultPlan` — a declarative, seeded, replayable composition of
  fault primitives (fair-lossy drops, duplication, reorder-inducing
  delays, timed partition windows, crash-stop / crash-recovery);
* :class:`FaultyNetwork` — applies a plan to any existing network
  through the ``System.network`` hook;
* :class:`RetransmitChannels` — rebuilds the reliable-channel
  assumption over fair-lossy links (ACK + seqno dedup + backoff
  retransmit), and :class:`ProgressMonitor` — converts liveness loss
  into a first-class ``STALLED`` verdict instead of a burned budget.
"""

from repro.faults.channels import RetransmitChannels
from repro.faults.monitor import ProgressMonitor
from repro.faults.network import FaultyNetwork
from repro.faults.plan import FaultPlan

__all__ = [
    "FaultPlan",
    "FaultyNetwork",
    "ProgressMonitor",
    "RetransmitChannels",
]
