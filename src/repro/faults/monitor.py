"""Stall-to-verdict liveness monitoring.

Under injected faults a run can lose liveness — a write that can never
reach its quorum just polls forever — and without help it burns the
whole step budget and surfaces as :class:`repro.errors.StepLimitExceeded`,
indistinguishable from "budget too small". :class:`ProgressMonitor`
watches a tuple of *progress signals* (delivered counters, recorded
responses, protocol-state versions) from inside the drive loop's goal
predicate and raises :class:`repro.errors.StallDetected` once nothing
has moved for a full stall window — converting the would-be hang into a
first-class ``STALLED`` verdict carrying a diagnosis: which operations
are pending and what the fault plan is suppressing.

Scenario drivers catch the exception and return normally, so a stalled
run is *completed* as far as the exploration/replay machinery is
concerned (its trace replays, shrinks, and persists to the corpus like
any safety violation); the stall reason is what ``check()`` reports.

The window must be comfortably larger than the longest legitimate gap
between progress events — with retransmit channels that is the capped
backoff interval — and far smaller than the drive's ``max_steps`` so a
stalling run still completes within budget.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.errors import ConfigurationError, StallDetected


class ProgressMonitor:
    """Raise :class:`StallDetected` when progress signals stop moving.

    Args:
        system: The system whose clock measures the window.
        signals: Zero-argument callable returning a comparable tuple of
            progress counters; any change resets the window. Counters
            should track *useful* events (deliveries into mailboxes,
            responses, protocol-state adoptions) — retransmission sends
            are not progress.
        window: Steps without a signal change before the stall verdict.
        describe_pending: Optional callable returning a one-line summary
            of the operations still pending (folded into the diagnosis).
        network: Optional network whose ``describe_suppression(now)``
            explains what a fault plan is cutting (a
            :class:`repro.faults.FaultyNetwork`).
        channels: Optional :class:`repro.faults.RetransmitChannels` the
            monitored system sends through. Attaching it arms the
            footgun check: a stall window at or below the channels'
            capped backoff reads every legitimate retransmit gap as a
            stall, so that configuration is rejected loudly.
    """

    def __init__(
        self,
        system: Any,
        signals: Callable[[], Tuple],
        window: int = 2_500,
        describe_pending: Optional[Callable[[], str]] = None,
        network: Optional[Any] = None,
        channels: Optional[Any] = None,
    ):
        if window < 1:
            raise ConfigurationError(f"stall window must be >= 1, got {window}")
        if channels is not None and window <= channels.max_backoff:
            raise ConfigurationError(
                f"stall window {window} steps must exceed the retransmit "
                f"layer's capped backoff ({channels.max_backoff} steps): a "
                f"legitimate retransmit gap would read as a stall"
            )
        self.system = system
        self.window = window
        self._signals = signals
        self._describe_pending = describe_pending
        self._network = network
        self._last: Optional[Tuple] = None
        self._last_change = system.clock
        #: Set to the diagnosis once a stall has been raised.
        self.stalled: Optional[str] = None

    def observe(self) -> None:
        """Sample the signals; raise once the window elapses unchanged.

        Designed to be called from a ``run_until`` goal predicate (so it
        runs before every step); cost is one tuple compare per step.
        """
        now = self.system.clock
        current = self._signals()
        if current != self._last:
            self._last = current
            self._last_change = now
            return
        if now - self._last_change >= self.window:
            self.stalled = self._diagnose(now)
            raise StallDetected(self.stalled)

    def _diagnose(self, now: int) -> str:
        parts = [
            f"STALLED: no progress for {self.window} steps (clock={now})"
        ]
        if self._describe_pending is not None:
            parts.append(f"pending: {self._describe_pending()}")
        if self._network is not None:
            describe = getattr(self._network, "describe_suppression", None)
            if describe is not None:
                parts.append(describe(now))
        return "; ".join(parts)
